"""Registry completeness and spec invariants."""

import json

import pytest

from repro.__main__ import main  # noqa: F401  (ensures CLI imports the registry)
from repro.exp import EXPERIMENTS, REGISTRY, get_spec

#: The historic CLI surface -- every name must stay resolvable.
LEGACY_NAMES = sorted(
    ["fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
     "ablation-tree-degree", "ablation-embedding", "ablation-barrier",
     "ablation-invalidation", "ablation-remapping", "bounded-memory"]
)

#: Cross-topology experiments added with the topology-generic network layer.
XTOPO_NAMES = ["xtopo-hypercube", "xtopo-torus"]

#: Cross-workload experiments added with the workload layer.
XWORK_NAMES = ["xwork-readfrac", "xwork-zipf"]

#: Scale-axis experiment added with the engine hot-path overhaul.
XSCALE_NAMES = ["xscale"]

#: Strategy-registry experiments added with the strategy plugin subsystem.
XSTRAT_NAMES = ["xcap", "xstrat"]
#: Failure-axis experiment added with the fault-injection subsystem.
XFAIL_NAMES = ["xfail"]
#: Adaptation-axis experiment added with the metric suite.
XADAPT_NAMES = ["xadapt"]

ALL_NAMES = sorted(
    LEGACY_NAMES + XTOPO_NAMES + XWORK_NAMES + XSCALE_NAMES + XSTRAT_NAMES
    + XFAIL_NAMES + XADAPT_NAMES
)


class TestRegistryCompleteness:
    def test_every_legacy_name_has_a_spec(self):
        for name in LEGACY_NAMES:
            spec = get_spec(name)
            assert spec.name == name

    def test_experiments_listing_matches_registry(self):
        assert EXPERIMENTS == sorted(REGISTRY)
        assert EXPERIMENTS == ALL_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="fig5"):
            get_spec("fig5")


class TestSpecInvariants:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_quick_cells_nonempty_and_serializable(self, name):
        spec = get_spec(name)
        assert spec.columns, f"{name}: no columns"
        cells = spec.cells(scale="quick")
        assert cells, f"{name}: no cells at quick scale"
        for cell in cells:
            # Cell kwargs must be JSON-serializable (cache + pool contract).
            json.dumps(dict(cell.kwargs))
            assert len(cell.key) == 64  # sha256 hex

    def test_cell_keys_unique_within_experiment(self):
        for name in ALL_NAMES:
            cells = get_spec(name).cells(scale="quick")
            keys = [c.key for c in cells]
            assert len(set(keys)) == len(keys), f"{name}: duplicate cell keys"

    def test_fig9_fig10_share_fig8_cells(self):
        """Figures 9/10 are projections of the Figure 8 runs: identical
        cells, so a warm cache makes them free."""
        fig8 = {c.key for c in get_spec("fig8").cells(scale="quick")}
        assert {c.key for c in get_spec("fig9").cells(scale="quick")} == fig8
        assert {c.key for c in get_spec("fig10").cells(scale="quick")} == fig8

    def test_titles_match_legacy_cli(self):
        p3 = get_spec("fig3").make_params("quick", "matmul")
        assert get_spec("fig3").title(p3, None, "matmul") == "fig3 (default scale)"
        assert get_spec("fig3").title(p3, "quick", "matmul") == "fig3 (quick scale)"
        td = get_spec("ablation-tree-degree")
        assert td.title(td.make_params(None, "bitonic"), None, "bitonic") == (
            "tree-degree ablation (bitonic)"
        )
        assert get_spec("bounded-memory").title({}, None, "matmul") == (
            "bounded-memory / LRU replacement"
        )

    def test_ablations_ignore_scale(self):
        for name in LEGACY_NAMES:
            if not (name.startswith("ablation-") or name == "bounded-memory"):
                continue
            spec = get_spec(name)
            quick = [c.key for c in spec.cells(scale="quick")]
            paper = [c.key for c in spec.cells(scale="paper")]
            assert quick == paper, f"{name}: scale changed ablation cells"

    def test_workload_sensitivity_flags(self):
        """Only the tree-degree and embedding ablations respond to
        --workload (their result files get workload-suffixed names for
        non-default workloads)."""
        for name in ALL_NAMES:
            spec = get_spec(name)
            matmul = [c.key for c in spec.cells(scale="quick", workload="matmul")]
            bitonic = [c.key for c in spec.cells(scale="quick", workload="bitonic")]
            if spec.uses_workload:
                assert matmul != bitonic, f"{name}: uses_workload but workload ignored"
            else:
                assert matmul == bitonic, f"{name}: workload changed cells unexpectedly"

    def test_workload_sensitive_specs_accept_synthetic_workloads(self):
        """The --workload axis is the whole registry, not just the two
        paper apps: the ablation specs expand cells for a synthetic
        kernel, sized by the kernel's own default load."""
        for name in ("ablation-tree-degree", "ablation-embedding"):
            spec = get_spec(name)
            cells = spec.cells(scale="quick", workload="zipf")
            assert cells
            for cell in cells:
                kwargs = dict(cell.kwargs)
                assert kwargs["workload"] == "zipf"
                assert kwargs["size"] == 64  # zipf's own default ops

    def test_topology_sensitivity_flags(self):
        """--topology changes exactly the topology-flagged experiments;
        everything else (including the internal xtopo/xwork sweeps)
        ignores it."""
        for name in ALL_NAMES:
            spec = get_spec(name)
            workload = "bitonic" if spec.uses_workload else "matmul"
            mesh = [c.key for c in spec.cells(scale="quick", workload=workload)]
            torus = [
                c.key
                for c in spec.cells(scale="quick", workload=workload, topology="torus")
            ]
            if spec.uses_topology:
                assert mesh != torus, f"{name}: uses_topology but topology ignored"
            else:
                assert mesh == torus, f"{name}: topology changed cells unexpectedly"

    def test_xtopo_experiments_cover_mesh_and_target_at_256_nodes(self):
        """The cross-topology sweeps compare against the mesh at matched
        node counts (>= 256) at every scale."""
        for name, target in (("xtopo-torus", "torus"), ("xtopo-hypercube", "hypercube")):
            spec = get_spec(name)
            for scale in ("quick", "default", "paper"):
                params = spec.params_for(scale=scale)
                assert params["side"] * params["side"] >= 256
                assert list(params["topologies"]) == ["mesh", target]

    def test_xwork_zipf_covers_all_topologies(self):
        """xwork-zipf sweeps the synthetic Zipf kernel over every
        topology family internally, at every scale."""
        spec = get_spec("xwork-zipf")
        for scale in ("quick", "default", "paper"):
            params = spec.params_for(scale=scale)
            assert params["topologies"] == ["mesh", "torus", "hypercube"]
        kinds = {dict(c.kwargs)["topology"] for c in spec.cells(scale="quick")}
        assert kinds == {"mesh", "torus", "hypercube"}

    def test_xwork_scales_ops(self):
        """The xwork sweeps respond to --scale through the per-processor
        op count (the node count stays pinned)."""
        for name in XWORK_NAMES:
            spec = get_spec(name)
            quick = [c.key for c in spec.cells(scale="quick")]
            paper = [c.key for c in spec.cells(scale="paper")]
            assert quick != paper, f"{name}: scale ignored"
            assert spec.params_for("quick")["side"] == spec.params_for("paper")["side"]

    def test_xtopo_shares_mesh_cell(self):
        """Both xtopo sweeps run the identical mesh reference cell, so a
        warm cache computes it once."""
        torus = {c.key for c in get_spec("xtopo-torus").cells(scale="quick")}
        hcube = {c.key for c in get_spec("xtopo-hypercube").cells(scale="quick")}
        assert torus & hcube, "no shared mesh reference cell"


class TestXstratXcapSpecs:
    def test_xstrat_covers_every_family_and_topology(self):
        """The cross-strategy sweep compares every strategy family --
        the paper's two plus migratory and dynrep -- on all three
        interconnects, at every scale."""
        spec = get_spec("xstrat")
        for scale in ("quick", "default", "paper"):
            kw = [dict(c.kwargs) for c in spec.cells(scale=scale)]
            assert {k["topology"] for k in kw} == {"mesh", "torus", "hypercube"}
            assert {k["strategy"] for k in kw} == {
                "fixed-home", "4-ary", "2-4-ary", "migratory", "dynrep"
            }
            assert {k["workload"] for k in kw} == {"bitonic", "zipf", "matmul"}
            # The paper's matmul needs grid coordinates: mesh only.
            assert all(k["topology"] == "mesh"
                       for k in kw if k["workload"] == "matmul")

    def test_xstrat_scales_load_not_machines(self):
        spec = get_spec("xstrat")
        quick = spec.params_for("quick")
        paper = spec.params_for("paper")
        assert quick["side"] == paper["side"]  # node count pinned
        assert quick["ops"] < paper["ops"]
        assert quick["keys"] < paper["keys"]

    def test_xcap_sweeps_capacity_incl_unbounded(self):
        spec = get_spec("xcap")
        for scale in ("quick", "default", "paper"):
            kw = [dict(c.kwargs) for c in spec.cells(scale=scale)]
            caps = {k["capacity_copies"] for k in kw}
            assert None in caps, "missing the unbounded reference point"
            assert any(c is not None and c <= 4 for c in caps), "no severe pressure"
            assert {k["strategy"] for k in kw} >= {"fixed-home", "2-ary", "dynrep",
                                                   "migratory"}

    def test_xcap_honors_topology_axis(self):
        spec = get_spec("xcap")
        assert spec.uses_topology
        torus = [dict(c.kwargs) for c in spec.cells(scale="quick", topology="torus")]
        assert all(k["topology"] == "torus" for k in torus)


class TestXscaleSpec:
    def test_xscale_sweeps_nodes_topologies_strategies(self):
        spec = get_spec("xscale")
        for scale, expect_nodes in (
            ("quick", {1024}),
            ("default", {1024, 2048, 4096}),
            ("paper", {1024, 2048, 4096, 16384}),
        ):
            cells = spec.cells(scale=scale)
            kw = [dict(c.kwargs) for c in cells]
            assert {k["nodes"] for k in kw} == expect_nodes
            assert {k["topology"] for k in kw} == {"mesh", "torus", "hypercube"}
            assert {k["strategy"] for k in kw} == {"fixed-home", "2-4-ary"}

    def test_xscale_scales_ops_not_machines(self):
        """--scale grows the per-processor load; the 1024-node machine is
        present at every scale so the axis never degrades to toy sizes."""
        spec = get_spec("xscale")
        quick = spec.params_for("quick")
        paper = spec.params_for("paper")
        assert quick["ops"] < paper["ops"]
        assert 1024 in quick["nodes"] and 1024 in paper["nodes"]
