"""CLI tests (python -m repro)."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.exp import SCHEMA_VERSION, get_spec


@pytest.fixture(autouse=True)
def _isolated_results_dir(tmp_path, monkeypatch):
    """Keep CLI-driven cache/result files out of the repository, and pin
    the scale so result-file names don't depend on the caller's env."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    return tmp_path / "results"


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_fig2_quick(self, capsys):
        assert main(["fig2", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "fixed-home" in out and "4-ary" in out

    def test_fig3_quick(self, capsys):
        assert main(["fig3", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "congestion_ratio" in out
        assert "handopt" in out

    def test_ablation_embedding(self, capsys):
        assert main(["ablation-embedding", "--app", "matmul"]) == 0
        out = capsys.readouterr().out
        assert "modified" in out and "random" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig5"])  # the paper has no figure 5 (circuit picture)

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--scale", "enormous"])

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--scale", "quick", "--jobs", "0"])


class TestOrchestratorCli:
    def test_json_flag_writes_schema_valid_file(self, _isolated_results_dir, capsys):
        assert main(["fig2", "--scale", "quick", "--json"]) == 0
        path = _isolated_results_dir / "fig2.quick.json"
        assert path.is_file()
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["experiment"] == "fig2"
        assert payload["scale"] == "quick"
        assert payload["columns"] == list(get_spec("fig2").columns)
        assert payload["rows"], "empty rows"
        for row in payload["rows"]:
            for col in get_spec("fig2").columns:
                assert col in row

    def test_cached_rerun_identical_output(self, capsys):
        assert main(["fig2", "--scale", "quick"]) == 0
        cold = capsys.readouterr().out
        assert main(["fig2", "--scale", "quick"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_no_cache_flag(self, _isolated_results_dir, capsys):
        assert main(["fig2", "--scale", "quick", "--no-cache"]) == 0
        assert not (_isolated_results_dir / "cache").exists()
        assert main(["fig2", "--scale", "quick"]) == 0
        assert (_isolated_results_dir / "cache").is_dir()

    def test_jobs_flag_identical_output(self, capsys):
        assert main(["fig2", "--scale", "quick", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig2", "--scale", "quick", "--no-cache", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_results_dir_flag_overrides_env(self, tmp_path, capsys):
        override = tmp_path / "elsewhere"
        assert main(["fig2", "--scale", "quick", "--json",
                     "--results-dir", str(override)]) == 0
        assert (override / "fig2.quick.json").is_file()

    def test_app_sensitive_ablation_gets_own_file(self, _isolated_results_dir, capsys):
        """--app bitonic must not overwrite the matmul result file."""
        assert main(["ablation-embedding", "--app", "matmul", "--json"]) == 0
        assert main(["ablation-embedding", "--app", "bitonic", "--json"]) == 0
        matmul = _isolated_results_dir / "ablation-embedding.default.json"
        bitonic = _isolated_results_dir / "ablation-embedding.bitonic.default.json"
        assert matmul.is_file() and bitonic.is_file()
        assert json.loads(matmul.read_text())["app"] == "matmul"
        assert json.loads(bitonic.read_text())["app"] == "bitonic"

    def test_topology_axis_gets_own_file(self, _isolated_results_dir, capsys):
        """--topology torus must not overwrite the mesh result file, and
        the payload must record the topology."""
        assert main(["ablation-barrier", "--topology", "torus", "--json"]) == 0
        path = _isolated_results_dir / "ablation-barrier.torus.default.json"
        assert path.is_file()
        payload = json.loads(path.read_text())
        assert payload["topology"] == "torus"
        assert all(row["topology"] == "torus" for row in payload["rows"])

    def test_topology_ignored_note_for_mesh_bound_experiment(self, capsys):
        assert main(["fig2", "--scale", "quick", "--topology", "torus"]) == 0
        err = capsys.readouterr().err
        assert "mesh-bound" in err

    def test_bad_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--scale", "quick", "--topology", "ring"])

    @pytest.mark.slow
    def test_xtopo_experiments_json_contract(self, _isolated_results_dir, capsys):
        """Acceptance contract: the cross-topology experiments emit
        schema-valid JSON with a topology field, comparing torus and
        hypercube against the mesh at >= 256 nodes."""
        for name, target in (("xtopo-torus", "torus"), ("xtopo-hypercube", "hypercube")):
            assert main([name, "--scale", "quick", "--jobs", "2", "--json"]) == 0
            payload = json.loads(
                (_isolated_results_dir / f"{name}.quick.json").read_text()
            )
            assert payload["schema_version"] == SCHEMA_VERSION
            assert payload["topology"] == f"mesh+{target}"
            kinds = {row["topology"] for row in payload["rows"]}
            assert kinds == {"mesh", target}
            assert all(row["nodes"] >= 256 for row in payload["rows"])

    @pytest.mark.slow
    def test_run_all_quick_writes_every_result(self, _isolated_results_dir, capsys):
        """The CI smoke contract: every registered experiment produces a
        non-empty, schema-valid JSON result file."""
        assert main(["run-all", "--scale", "quick", "--jobs", "2", "--json"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            path = _isolated_results_dir / f"{name}.quick.json"
            assert path.is_file(), f"missing {path}"
            payload = json.loads(path.read_text())
            assert payload["experiment"] == name
            assert payload["rows"], f"{name}: empty rows"
            spec = get_spec(name)
            for row in payload["rows"]:
                for col in spec.columns:
                    assert col in row, f"{name}: row missing {col}"
            assert get_spec(name).title(
                spec.make_params("quick", "matmul"), "quick", "matmul"
            ) in out
