"""CLI tests (python -m repro)."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.exp import SCHEMA_VERSION, get_spec


@pytest.fixture(autouse=True)
def _isolated_results_dir(tmp_path, monkeypatch):
    """Keep CLI-driven cache/result files out of the repository, and pin
    the scale so result-file names don't depend on the caller's env."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    return tmp_path / "results"


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_fig2_quick(self, capsys):
        assert main(["fig2", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "fixed-home" in out and "4-ary" in out

    def test_fig3_quick(self, capsys):
        assert main(["fig3", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "congestion_ratio" in out
        assert "handopt" in out

    def test_ablation_embedding(self, capsys):
        assert main(["ablation-embedding", "--app", "matmul"]) == 0
        out = capsys.readouterr().out
        assert "modified" in out and "random" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig5"])  # the paper has no figure 5 (circuit picture)

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--scale", "enormous"])

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--scale", "quick", "--jobs", "0"])


class TestOrchestratorCli:
    def test_json_flag_writes_schema_valid_file(self, _isolated_results_dir, capsys):
        assert main(["fig2", "--scale", "quick", "--json"]) == 0
        path = _isolated_results_dir / "fig2.quick.json"
        assert path.is_file()
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["experiment"] == "fig2"
        assert payload["scale"] == "quick"
        assert payload["columns"] == list(get_spec("fig2").columns)
        assert payload["rows"], "empty rows"
        for row in payload["rows"]:
            for col in get_spec("fig2").columns:
                assert col in row

    def test_cached_rerun_identical_output(self, capsys):
        assert main(["fig2", "--scale", "quick"]) == 0
        cold = capsys.readouterr().out
        assert main(["fig2", "--scale", "quick"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_no_cache_flag(self, _isolated_results_dir, capsys):
        assert main(["fig2", "--scale", "quick", "--no-cache"]) == 0
        assert not (_isolated_results_dir / "cache").exists()
        assert main(["fig2", "--scale", "quick"]) == 0
        assert (_isolated_results_dir / "cache").is_dir()

    def test_jobs_flag_identical_output(self, capsys):
        assert main(["fig2", "--scale", "quick", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig2", "--scale", "quick", "--no-cache", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_results_dir_flag_overrides_env(self, tmp_path, capsys):
        override = tmp_path / "elsewhere"
        assert main(["fig2", "--scale", "quick", "--json",
                     "--results-dir", str(override)]) == 0
        assert (override / "fig2.quick.json").is_file()

    def test_app_sensitive_ablation_gets_own_file(self, _isolated_results_dir, capsys):
        """--app bitonic must not overwrite the matmul result file."""
        assert main(["ablation-embedding", "--app", "matmul", "--json"]) == 0
        assert main(["ablation-embedding", "--app", "bitonic", "--json"]) == 0
        matmul = _isolated_results_dir / "ablation-embedding.default.json"
        bitonic = _isolated_results_dir / "ablation-embedding.bitonic.default.json"
        assert matmul.is_file() and bitonic.is_file()
        assert json.loads(matmul.read_text())["workload"] == "matmul"
        assert json.loads(bitonic.read_text())["workload"] == "bitonic"

    def test_topology_axis_gets_own_file(self, _isolated_results_dir, capsys):
        """--topology torus must not overwrite the mesh result file, and
        the payload must record the topology."""
        assert main(["ablation-barrier", "--topology", "torus", "--json"]) == 0
        path = _isolated_results_dir / "ablation-barrier.torus.default.json"
        assert path.is_file()
        payload = json.loads(path.read_text())
        assert payload["topology"] == "torus"
        assert all(row["topology"] == "torus" for row in payload["rows"])

    def test_topology_ignored_note_for_mesh_bound_experiment(self, capsys):
        assert main(["fig2", "--scale", "quick", "--topology", "torus"]) == 0
        err = capsys.readouterr().err
        assert "mesh-bound" in err

    def test_bad_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--scale", "quick", "--topology", "ring"])

    def test_workload_axis_gets_own_file(self, _isolated_results_dir, capsys):
        """--workload zipf must produce its own schema-v3 result file
        carrying the workload name."""
        assert main(["ablation-embedding", "--workload", "zipf", "--json"]) == 0
        path = _isolated_results_dir / "ablation-embedding.zipf.default.json"
        assert path.is_file()
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["workload"] == "zipf"
        assert "app" not in payload  # the v3 alias was removed in schema v4
        assert all(row["workload"] == "zipf" for row in payload["rows"])

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["ablation-embedding", "--workload", "tetris"])

    def test_xcap_quick_schema_v5_fields(self, _isolated_results_dir, capsys):
        """xcap rows carry the schema-v5 strategy/capacity fields."""
        assert main(["xcap", "--scale", "quick", "--json"]) == 0
        payload = json.loads((_isolated_results_dir / "xcap.quick.json").read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        for row in payload["rows"]:
            assert "strategy_params" in row and "strategy_family" in row
            assert "capacity_bytes" in row
            assert "hit_rate" in row and "evictions" in row
        caps = {row["capacity_copies"] for row in payload["rows"]}
        assert "unbounded" in caps and len(caps) >= 2
        # Pressure really evicts for the replicating strategies.
        assert any(row["evictions"] > 0 for row in payload["rows"])

    def test_xwork_readfrac_quick(self, _isolated_results_dir, capsys):
        assert main(["xwork-readfrac", "--scale", "quick", "--json"]) == 0
        payload = json.loads(
            (_isolated_results_dir / "xwork-readfrac.quick.json").read_text()
        )
        assert payload["workload"] == "zipf"
        fracs = {row["read_frac"] for row in payload["rows"]}
        assert len(fracs) >= 3


class TestTraceCli:
    def test_record_then_replay_roundtrip(self, tmp_path, capsys):
        trace_path = str(tmp_path / "bitonic.trace.gz")
        assert main(["trace-record", "--workload", "bitonic", "--strategy", "2-4-ary",
                     "--side", "4", "--size", "32", "--trace", trace_path]) == 0
        recorded = capsys.readouterr()
        assert "recorded bitonic" in recorded.err
        assert main(["trace-replay", "--trace", trace_path]) == 0
        replayed = capsys.readouterr().out
        # Same config -> the summary row (time, congestion, totals) is
        # identical to the recording run's.
        assert recorded.out.splitlines()[-2:] == replayed.splitlines()[-2:]

    def test_replay_under_other_strategy_and_topology(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.trace.gz")
        assert main(["trace-record", "--workload", "zipf", "--side", "4",
                     "--size", "8", "--trace", trace_path]) == 0
        capsys.readouterr()
        assert main(["trace-replay", "--trace", trace_path,
                     "--strategy", "fixed-home", "--topology", "hypercube"]) == 0
        out = capsys.readouterr().out
        assert "fixed-home" in out and "hypercube" in out

    def test_replay_topology_equals_form(self, tmp_path, capsys):
        """Regression: the --topology=kind spelling must count as an
        override too (the CLI once scanned argv for the space-separated
        form only)."""
        trace_path = str(tmp_path / "t.trace.gz")
        assert main(["trace-record", "--workload", "zipf", "--side", "4",
                     "--size", "8", "--trace", trace_path]) == 0
        capsys.readouterr()
        assert main(["trace-replay", "--trace", trace_path,
                     "--topology=torus"]) == 0
        assert "torus" in capsys.readouterr().out

    def test_trace_flag_required(self, capsys):
        assert main(["trace-replay"]) == 2
        assert "--trace" in capsys.readouterr().err

    def test_unknown_strategy_rejected(self, tmp_path, capsys):
        assert main(["trace-record", "--workload", "zipf", "--strategy", "octopus",
                     "--trace", str(tmp_path / "t.json")]) == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_malformed_strategy_spec_rejected(self, tmp_path, capsys):
        assert main(["trace-record", "--workload", "zipf",
                     "--strategy", "dynrep:threshold=0",
                     "--trace", str(tmp_path / "t.json")]) == 2
        assert "threshold" in capsys.readouterr().err

    def test_record_and_replay_under_registry_specs(self, tmp_path, capsys):
        """--strategy accepts any registry spec: record under migratory,
        replay under a parameterized dynrep."""
        trace_path = str(tmp_path / "t.trace.gz")
        assert main(["trace-record", "--workload", "zipf", "--side", "4",
                     "--size", "8", "--strategy", "migratory",
                     "--trace", trace_path]) == 0
        assert "migratory" in capsys.readouterr().out
        assert main(["trace-replay", "--trace", trace_path,
                     "--strategy", "dynrep:threshold=3"]) == 0
        assert "dynrep:threshold=3" in capsys.readouterr().out

    @pytest.mark.slow
    def test_xtopo_experiments_json_contract(self, _isolated_results_dir, capsys):
        """Acceptance contract: the cross-topology experiments emit
        schema-valid JSON with a topology field, comparing torus and
        hypercube against the mesh at >= 256 nodes."""
        for name, target in (("xtopo-torus", "torus"), ("xtopo-hypercube", "hypercube")):
            assert main([name, "--scale", "quick", "--jobs", "2", "--json"]) == 0
            payload = json.loads(
                (_isolated_results_dir / f"{name}.quick.json").read_text()
            )
            assert payload["schema_version"] == SCHEMA_VERSION
            assert payload["topology"] == f"mesh+{target}"
            kinds = {row["topology"] for row in payload["rows"]}
            assert kinds == {"mesh", target}
            assert all(row["nodes"] >= 256 for row in payload["rows"])

    @pytest.mark.slow
    def test_xwork_zipf_all_topologies_contract(self, _isolated_results_dir, capsys):
        """Acceptance contract: xwork-zipf emits schema-v3 cached results
        covering all three topology families."""
        assert main(["xwork-zipf", "--scale", "quick", "--jobs", "2", "--json"]) == 0
        payload = json.loads(
            (_isolated_results_dir / "xwork-zipf.quick.json").read_text()
        )
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["workload"] == "zipf"
        assert payload["topology"] == "mesh+torus+hypercube"
        assert {row["topology"] for row in payload["rows"]} == {
            "mesh", "torus", "hypercube"
        }
        # Cached: the immediate re-run hits every cell.
        assert main(["xwork-zipf", "--scale", "quick", "--json"]) == 0
        assert "27/27 cells cached" in capsys.readouterr().err

    @pytest.mark.slow
    def test_run_all_quick_writes_every_result(self, _isolated_results_dir, capsys):
        """The CI smoke contract: every registered experiment produces a
        non-empty, schema-valid JSON result file."""
        assert main(["run-all", "--scale", "quick", "--jobs", "2", "--json"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            path = _isolated_results_dir / f"{name}.quick.json"
            assert path.is_file(), f"missing {path}"
            payload = json.loads(path.read_text())
            assert payload["schema_version"] == SCHEMA_VERSION
            assert payload["experiment"] == name
            assert payload["rows"], f"{name}: empty rows"
            for row in payload["rows"]:
                # Schema v5: every cell row carries the cache columns.
                for col in ("hits", "misses", "hit_rate", "evictions"):
                    assert col in row, f"{name}: row missing {col}"
                # Schema v7: the metric suite rides on every cell row,
                # well-formed (ordered percentiles, non-negative costs).
                for col in ("latency_p50", "latency_p95", "latency_p99",
                            "storage_cost", "effective_network_usage"):
                    assert col in row, f"{name}: row missing {col}"
                assert (0.0 <= row["latency_p50"] <= row["latency_p95"]
                        <= row["latency_p99"]), f"{name}: unordered percentiles"
                assert row["storage_cost"] >= 0.0, f"{name}: negative storage cost"
            spec = get_spec(name)
            for row in payload["rows"]:
                for col in spec.columns:
                    assert col in row, f"{name}: row missing {col}"
            assert get_spec(name).title(
                spec.make_params("quick", "matmul"), "quick", "matmul"
            ) in out


class TestFailuresCli:
    """The --failures flag: accepted where it means something, rejected
    loudly everywhere else, and the xfail sweep emits the schema-v6
    availability contract CI smokes."""

    AVAILABILITY_COLUMNS = (
        "requests_failed", "requests_stalled", "requests_retried",
        "repairs", "failure_events",
    )

    def test_malformed_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["xfail", "--scale", "quick", "--failures", "linkflap:rate=-1"])
        assert "within [0.0, 1.0]" in capsys.readouterr().err

    def test_unknown_model_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["xfail", "--scale", "quick", "--failures", "meteor:rate=1"])
        assert "unknown failure model" in capsys.readouterr().err

    def test_schedule_only_drives_xfail(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig3", "--scale", "quick",
                  "--failures", "churn:nodes=0.1"])
        assert "only applies to the xfail" in capsys.readouterr().err

    def test_explicit_none_accepted_everywhere(self, capsys):
        assert main(["fig2", "--scale", "quick", "--failures", "none"]) == 0

    def test_trace_record_rejects_malformed_spec(self, tmp_path, capsys):
        assert main(["trace-record", "--workload", "zipf",
                     "--failures", "linkflap:wat=3",
                     "--trace", str(tmp_path / "t.trace.gz")]) == 2
        assert "has no parameter 'wat'" in capsys.readouterr().err

    def test_xfail_single_spec_override(self, _isolated_results_dir, capsys):
        """--failures SPEC narrows the xfail sweep to that one schedule."""
        spec = "nodedown:node=3:at=0.002"
        assert main(["xfail", "--scale", "quick", "--jobs", "2", "--json",
                     "--failures", spec]) == 0
        payload = json.loads(
            (_isolated_results_dir / "xfail.quick.json").read_text()
        )
        assert {row["failures"] for row in payload["rows"]} == {spec}
        assert all(row["failure_model"] == "nodedown" for row in payload["rows"])
        assert all(row["failure_events"] == 1 for row in payload["rows"])

    @pytest.mark.slow
    def test_xfail_quick_json_contract(self, _isolated_results_dir, capsys):
        """The CI smoke contract for the failure axis: the quick xfail
        sweep covers every strategy family on every topology under every
        scheduled spec, rows carry the schema-v6 availability columns,
        zero-failure rows stay all-zero, and churn really fires."""
        assert main(["xfail", "--scale", "quick", "--jobs", "2", "--json"]) == 0
        payload = json.loads(
            (_isolated_results_dir / "xfail.quick.json").read_text()
        )
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["experiment"] == "xfail"
        rows = payload["rows"]
        assert {row["strategy"] for row in rows} == {
            "fixed-home", "4-ary", "2-4-ary", "migratory", "dynrep"
        }
        assert {row["topology"] for row in rows} == {
            "mesh", "torus", "hypercube"
        }
        models = {row["failure_model"] for row in rows}
        assert models == {"none", "linkflap", "churn"}
        for row in rows:
            for col in self.AVAILABILITY_COLUMNS:
                assert col in row, f"row missing {col}"
        for row in rows:
            if row["failure_model"] == "none":
                assert all(row[col] == 0 for col in self.AVAILABILITY_COLUMNS)
            else:
                assert row["failure_events"] > 0
            if row["failure_model"] == "churn":
                assert row["repairs"] > 0


class TestXadaptCli:
    """The adaptation axis: the quick xadapt sweep covers every strategy
    of the comparison on every topology at every drift rate, and rows
    carry the full schema-v7 metric suite."""

    METRIC_COLUMNS = (
        "latency_p50", "latency_p95", "latency_p99",
        "storage_cost", "effective_network_usage",
    )

    @pytest.mark.slow
    def test_xadapt_quick_json_contract(self, _isolated_results_dir, capsys):
        assert main(["xadapt", "--scale", "quick", "--jobs", "2", "--json"]) == 0
        payload = json.loads(
            (_isolated_results_dir / "xadapt.quick.json").read_text()
        )
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["experiment"] == "xadapt"
        rows = payload["rows"]
        assert {row["strategy"] for row in rows} == {
            "adaptive", "dynrep", "fixed-home", "4-ary"
        }
        assert {row["topology"] for row in rows} == {"mesh", "torus", "hypercube"}
        assert {row["drift"] for row in rows} == {0, 2}
        for row in rows:
            assert row["workload"] == "hotspot-drift"
            for col in self.METRIC_COLUMNS:
                assert col in row, f"row missing {col}"
            assert 0.0 <= row["latency_p50"] <= row["latency_p95"] <= row["latency_p99"]
            assert row["storage_cost"] >= 0.0
            assert row["effective_network_usage"] >= 0.0
            assert 0.0 <= row["hit_rate"] <= 1.0
        # Immediate re-run is fully cached (cell determinism).
        assert main(["xadapt", "--scale", "quick", "--json"]) == 0
        assert "24/24 cells cached" in capsys.readouterr().err
