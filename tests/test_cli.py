"""CLI tests (python -m repro)."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_fig2_quick(self, capsys):
        assert main(["fig2", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "fixed-home" in out and "4-ary" in out

    def test_fig3_quick(self, capsys):
        assert main(["fig3", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "congestion_ratio" in out
        assert "handopt" in out

    def test_ablation_embedding(self, capsys):
        assert main(["ablation-embedding", "--app", "matmul"]) == 0
        out = capsys.readouterr().out
        assert "modified" in out and "random" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig5"])  # the paper has no figure 5 (circuit picture)

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--scale", "enormous"])
