"""Cross-module integration tests: whole applications across strategy
variants, consistency of traffic accounting, and measurement plumbing."""

import pytest

from repro import GCEL, Mesh2D, get_strategy
from repro.apps import barneshut, bitonic, matmul

ALL = ["2-ary", "4-ary", "16-ary", "2-4-ary", "4-8-ary", "4-16-ary", "fixed-home"]


@pytest.mark.parametrize("strategy", ALL)
def test_matmul_correct_on_every_strategy(strategy):
    mesh = Mesh2D(4, 4)
    res = matmul.run_diva(mesh, get_strategy(strategy, mesh), block_entries=16)
    assert res.extra["verified"]
    assert res.time > 0


@pytest.mark.parametrize("strategy", ALL)
def test_bitonic_correct_on_every_strategy(strategy):
    mesh = Mesh2D(4, 4)
    res = bitonic.run_diva(mesh, get_strategy(strategy, mesh), keys_per_wire=16)
    assert res.extra["verified"]


@pytest.mark.parametrize("strategy", ["2-ary", "2-4-ary", "16-ary", "4-8-ary"])
def test_barneshut_matches_reference_on_more_strategies(strategy):
    mesh = Mesh2D(2, 2)
    res = barneshut.run(
        mesh, get_strategy(strategy, mesh), n_bodies=48, steps=2, warm=1, verify=True
    )
    assert res.extra["verified"]


def test_total_load_equals_per_link_sum():
    """Conservation: the sum of per-link bytes equals the per-phase sums."""
    mesh = Mesh2D(4, 4)
    res = matmul.run_diva(mesh, get_strategy("4-ary", mesh), 64)
    phase_total = sum(p.stats.total_bytes for p in res.phases)
    assert phase_total == pytest.approx(res.stats.total_bytes)


def test_phase_times_cover_run():
    mesh = Mesh2D(4, 4)
    res = matmul.run_diva(mesh, get_strategy("4-ary", mesh), 64)
    assert sum(p.time for p in res.phases) == pytest.approx(res.time, rel=1e-6)


def test_random_embedding_still_correct():
    mesh = Mesh2D(4, 4)
    strat = get_strategy("4-ary", mesh, embedding="random")
    res = matmul.run_diva(mesh, strat, block_entries=16)
    assert res.extra["verified"]


def test_central_barrier_still_correct():
    mesh = Mesh2D(4, 4)
    res = bitonic.run_diva(mesh, get_strategy("4-ary", mesh), 16, barrier="central")
    assert res.extra["verified"]


def test_bounded_memory_end_to_end_correct():
    """Even under heavy replacement the computation stays correct."""
    mesh = Mesh2D(4, 4)
    res = matmul.run_diva(
        mesh, get_strategy("2-ary", mesh), block_entries=64, capacity_bytes=1500
    )
    assert res.extra["verified"]
    assert res.evictions > 0


def test_seeds_change_placement_but_not_results():
    mesh = Mesh2D(4, 4)
    r1 = matmul.run_diva(mesh, get_strategy("4-ary", mesh, seed=1), 64, seed=0)
    r2 = matmul.run_diva(mesh, get_strategy("4-ary", mesh, seed=2), 64, seed=0)
    assert r1.extra["verified"] and r2.extra["verified"]
    # different tree embeddings => (almost surely) different congestion
    assert r1.congestion_bytes != r2.congestion_bytes


def test_gcel_wall_sanity():
    """Absolute virtual time on GCEL parameters lands in a plausible range:
    the hand-optimized 4x4 matmul with 4 KB blocks is dominated by its
    pipeline bandwidth term (~tenths of a second)."""
    res = matmul.run_handopt(Mesh2D(4, 4), 1024)
    assert 0.01 < res.time < 2.0


def test_larger_networks_increase_fixed_home_disadvantage():
    ratios = []
    for side in (4, 8):
        mesh = Mesh2D(side, side)
        at = matmul.run_diva(mesh, get_strategy("4-ary", mesh), 256)
        fh = matmul.run_diva(mesh, get_strategy("fixed-home", mesh), 256)
        ratios.append(fh.congestion_bytes / at.congestion_bytes)
    assert ratios[1] > ratios[0]
