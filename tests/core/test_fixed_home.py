"""Fixed home strategy: ownership scheme semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fixed_home import HOME, FixedHomeStrategy
from repro.core.registry import get_strategy
from repro.network.machine import GCEL, ZERO_COST
from repro.network.mesh import Mesh2D
from repro.runtime.launcher import Runtime


class Driver:
    def __init__(self, machine=ZERO_COST, seed=0, **kw):
        self.mesh = Mesh2D(4, 4)
        self.strategy = get_strategy("fixed-home", self.mesh, seed=seed)
        self.rt = Runtime(self.mesh, self.strategy, machine, seed=seed, **kw)
        self.completions = []
        self.rt.resume = lambda p, t, v: self.completions.append((p, t, v))

    def create(self, name, size, creator, value):
        return self.rt.create_var(name, size, creator, value)

    def read(self, p, var):
        res = self.strategy.read(p, var, self.rt.sim.now)
        if res is not None:
            return res[1], True
        self.rt.sim.run()
        _, _, value = self.completions.pop()
        return value, False

    def write(self, p, var, value):
        res = self.strategy.write(p, var, value, self.rt.sim.now)
        if res is None:
            self.rt.sim.run()
            self.completions.pop()
            return False
        return True


class TestOwnership:
    def test_creator_starts_as_owner_with_sole_copy(self):
        d = Driver()
        var = d.create("x", 64, creator=3, value=1)
        assert d.strategy.owner_of(var) == 3
        assert d.strategy.copy_procs(var) == {3}

    def test_home_is_deterministic_random(self):
        d1 = Driver(seed=7)
        d2 = Driver(seed=7)
        v1 = d1.create("x", 64, 0, 1)
        v2 = d2.create("x", 64, 0, 1)
        assert d1.strategy.home_of(v1.vid) == d2.strategy.home_of(v2.vid)
        # Different seeds spread homes differently.
        d3 = Driver(seed=8)
        homes7 = [d1.create(f"a{i}", 8, 0, 0) for i in range(20)]
        homes8 = [d3.create(f"a{i}", 8, 0, 0) for i in range(20)]
        h7 = [d1.strategy.home_of(v.vid) for v in homes7]
        h8 = [d3.strategy.home_of(v.vid) for v in homes8]
        assert h7 != h8

    def test_read_moves_ownership_to_home(self):
        d = Driver()
        var = d.create("x", 64, creator=3, value=10)
        value, hit = d.read(9, var)
        assert value == 10 and not hit
        assert d.strategy.owner_of(var) == HOME
        # Previous owner keeps a copy; home and reader gained copies.
        copies = d.strategy.copy_procs(var)
        assert {3, 9} <= copies
        assert d.strategy.home_of(var.vid) in copies

    def test_owner_write_is_free(self):
        d = Driver()
        var = d.create("x", 64, creator=3, value=10)
        assert d.write(3, var, 11) is True
        assert d.rt.sim.stats.total_msgs == 0
        assert d.strategy.write_local == 1

    def test_non_owner_write_invalidates_everything(self):
        d = Driver()
        var = d.create("x", 64, creator=3, value=10)
        for p in (1, 5, 9):
            d.read(p, var)
        assert d.write(7, var, 99) is False
        assert d.strategy.owner_of(var) == 7
        assert d.strategy.copy_procs(var) == {7}
        assert d.read(1, var) == (99, False)

    def test_write_read_write_cycle(self):
        """The paper's condition: every write preceded by the writer's own
        read => behaves like a P-ary access tree."""
        d = Driver()
        var = d.create("x", 64, creator=0, value=0)
        for step, p in enumerate((4, 9, 2)):
            v, _ = d.read(p, var)
            assert v == step
            d.write(p, var, step + 1)
            assert d.strategy.owner_of(var) == p

    def test_read_after_read_is_hit(self):
        d = Driver()
        var = d.create("x", 64, creator=0, value=5)
        d.read(8, var)
        assert d.read(8, var) == (5, True)

    def test_owner_read_is_hit(self):
        d = Driver()
        var = d.create("x", 64, creator=6, value=5)
        assert d.read(6, var) == (5, True)


class TestTraffic:
    def test_read_miss_from_owner_counts_fetch(self):
        """First remote read fetches from the owner through the home:
        control request + control fetch + two data messages."""
        d = Driver(machine=GCEL)
        var = d.create("x", 256, creator=0, value=1)
        d.read(15, var)
        s = d.rt.sim.stats
        assert s.data_msgs == 2
        assert s.ctrl_msgs == 2

    def test_read_miss_from_home_is_single_data(self):
        d = Driver(machine=GCEL)
        var = d.create("x", 256, creator=0, value=1)
        d.read(15, var)  # moves ownership to home
        d.rt.sim.stats = type(d.rt.sim.stats)(d.mesh)  # fresh counters
        d.read(3, var)
        s = d.rt.sim.stats
        assert s.data_msgs == 1
        assert s.ctrl_msgs == 1

    def test_write_sends_one_invalidation_per_copy(self):
        d = Driver(machine=GCEL)
        var = d.create("x", 256, creator=0, value=1)
        readers = [3, 7, 11]
        for p in readers:
            d.read(p, var)
        before = d.rt.sim.stats.ctrl_msgs
        d.write(5, var, 2)
        # copies: {0, home, 3, 7, 11}; request + grant + (inv+ack) per copy.
        holders = len({0, d.strategy.home_of(var.vid), 3, 7, 11})
        assert d.rt.sim.stats.ctrl_msgs - before == 2 + 2 * holders
        # Data total unchanged by the write: the first read fetched from the
        # owner (2 data messages), the other two reads one data message each.
        assert d.rt.sim.stats.data_msgs == 4


ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=1,
    max_size=40,
)


@given(ops=ops)
@settings(max_examples=60, deadline=None)
def test_ownership_invariants_under_random_ops(ops):
    """Invariants of the ownership scheme: the owner (processor or home)
    always holds a valid copy; after a write the writer is the sole holder;
    reads always return the last written value."""
    d = Driver()
    variables = [d.create(f"v{i}", 64, creator=i * 5, value=("init", i)) for i in range(3)]
    last = {i: ("init", i) for i in range(3)}
    for n, (kind, p, vi) in enumerate(ops):
        var = variables[vi]
        if kind == "read":
            value, _ = d.read(p, var)
            assert value == last[vi]
        else:
            d.write(p, var, ("w", n))
            last[vi] = ("w", n)
            assert d.strategy.owner_of(var) == p
            assert d.strategy.copy_procs(var) == {p}
        st_ = d.strategy._states[var.vid]
        if st_.owner == HOME:
            assert st_.home in st_.copies
        else:
            assert st_.owner in st_.copies


def test_reset_counters():
    d = Driver()
    var = d.create("x", 64, creator=0, value=1)
    d.read(5, var)
    d.write(5, var, 2)
    d.strategy.reset_counters()
    assert d.strategy.hits == d.strategy.misses == 0
    assert d.strategy.write_local == d.strategy.write_remote == 0
