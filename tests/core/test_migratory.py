"""MigratoryStrategy protocol tests: single copy, owner migration on
write, read forwarding without replication."""

import pytest

from repro.core.migratory import MigratoryStrategy
from repro.network.machine import ZERO_COST
from repro.network.mesh import Mesh2D
from repro.network.topology import make_topology
from repro.runtime.launcher import Runtime, run_spmd
from repro.workloads import get_workload


def drive(mesh, program, seed=0, **kw):
    strat = MigratoryStrategy(mesh, seed=seed)
    rt = Runtime(mesh, strat, ZERO_COST, seed=seed, **kw)
    res = rt.run(program)
    return strat, rt, res


class TestProtocol:
    def test_creator_owns_the_sole_copy(self):
        mesh = Mesh2D(2, 2)
        handles = {}

        def program(env):
            if env.rank == 1:
                handles["x"] = env.create("x", 64, value=7)
            yield from env.barrier()

        strat, rt, _ = drive(mesh, program)
        var = handles["x"]
        assert strat.owner_of(var) == 1
        assert strat.copy_procs(var) == {1}

    def test_write_migrates_ownership(self):
        mesh = Mesh2D(2, 2)
        handles = {}

        def program(env):
            if env.rank == 0:
                handles["x"] = env.create("x", 64, value=0)
            yield from env.barrier()
            if env.rank == 3:
                yield from env.write(handles["x"], 42)
            yield from env.barrier()

        strat, rt, _ = drive(mesh, program)
        var = handles["x"]
        assert strat.owner_of(var) == 3
        assert strat.copy_procs(var) == {3}  # single copy, moved
        assert rt.registry.get(var) == 42
        assert strat.migrations == 1

    def test_read_forwards_without_replication(self):
        """A non-owner read returns the value but creates no copy: the
        second read by the same processor misses again."""
        mesh = Mesh2D(2, 2)
        handles = {}

        def program(env):
            if env.rank == 0:
                handles["x"] = env.create("x", 64, value=5)
            yield from env.barrier()
            if env.rank == 2:
                v1 = yield from env.read(handles["x"])
                v2 = yield from env.read(handles["x"])
                assert v1 == v2 == 5
            yield from env.barrier()

        strat, rt, _ = drive(mesh, program)
        var = handles["x"]
        assert strat.owner_of(var) == 0  # reads never move the copy
        assert strat.copy_procs(var) == {0}
        assert strat.forwards == 2  # both reads paid the round trip
        assert strat.misses == 2 and strat.hits == 0

    def test_owner_accesses_are_free(self):
        mesh = Mesh2D(2, 2)
        handles = {}

        def program(env):
            if env.rank == 0:
                handles["x"] = env.create("x", 64, value=0)
                v = yield from env.read(handles["x"])
                yield from env.write(handles["x"], v + 1)
            yield from env.barrier()

        strat, rt, res = drive(mesh, program)
        assert strat.hits == 1 and strat.misses == 0
        assert strat.write_local == 1 and strat.write_remote == 0

    def test_migration_carries_the_value(self):
        """Write-migrate then read back from a third processor."""
        mesh = Mesh2D(2, 2)
        handles = {}
        seen = {}

        def program(env):
            if env.rank == 0:
                handles["x"] = env.create("x", 64, value="initial")
            yield from env.barrier()
            if env.rank == 1:
                yield from env.write(handles["x"], "migrated")
            yield from env.barrier()
            if env.rank == 2:
                seen["v"] = yield from env.read(handles["x"])
            yield from env.barrier()

        strat, rt, _ = drive(mesh, program)
        assert seen["v"] == "migrated"
        assert strat.owner_of(handles["x"]) == 1

    def test_lock_mutual_exclusion(self):
        """The directory FIFO lock serializes increments."""
        mesh = Mesh2D(2, 2)
        handles = {}

        def program(env):
            if env.rank == 0:
                handles["x"] = env.create("x", 16, value=0)
            yield from env.barrier()
            for _ in range(3):
                yield from env.lock(handles["x"])
                v = yield from env.read(handles["x"])
                yield from env.write(handles["x"], v + 1)
                yield from env.unlock(handles["x"])
            yield from env.barrier()

        strat, rt, _ = drive(mesh, program)
        assert rt.registry.get(handles["x"]) == 3 * mesh.n_nodes
        assert strat.lock_acquisitions == 3 * mesh.n_nodes


class TestCounters:
    def test_reset_counters_covers_all_window_counters(self):
        """migrations/forwards track write_remote/misses: a measurement
        reset must zero all of them together."""
        mesh = Mesh2D(2, 2)
        strat = MigratoryStrategy(mesh)
        Runtime(mesh, strat, ZERO_COST)
        strat.hits = strat.misses = 3
        strat.write_local = strat.write_remote = 2
        strat.migrations = strat.forwards = 2
        strat.reset_counters()
        assert (strat.hits, strat.misses, strat.write_local, strat.write_remote,
                strat.migrations, strat.forwards) == (0, 0, 0, 0, 0, 0)


class TestBoundedMemory:
    def test_sole_copy_never_evicted(self):
        """Capacity pressure cannot evict the authoritative single copy:
        evictions stay zero and every variable keeps exactly one copy."""
        mesh = Mesh2D(2, 2)
        res = get_workload("zipf").run(
            mesh, "migratory", seed=1,
            params={"ops": 16, "n_vars": 8, "payload": 256},
            capacity_bytes=256,  # room for a single copy per processor
        )
        assert res.evictions == 0
        rt = res.extra["runtime"]
        owners = [rt.strategy.owner_of(rt.registry.by_id(v)) for v in range(8)]
        assert all(o is not None for o in owners)


class TestEquivalenceAndDeterminism:
    @pytest.mark.parametrize("kind", ["mesh", "torus", "hypercube"])
    def test_runs_on_every_topology(self, kind):
        topo = make_topology(kind, 4)
        res = get_workload("zipf").run(topo, "migratory", seed=0,
                                       params={"ops": 8, "n_vars": 8})
        assert res.time > 0

    def test_run_spmd_roundtrip(self):
        mesh = Mesh2D(2, 2)
        handles = {}

        def program(env):
            if env.rank == 0:
                handles["x"] = env.create("x", 32, value=0)
            yield from env.barrier()
            yield from env.write(handles["x"], env.rank)
            yield from env.barrier()

        res = run_spmd(mesh, MigratoryStrategy(mesh), program, ZERO_COST)
        assert res.strategy == "migratory"
