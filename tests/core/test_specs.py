"""The shared spec grammar (repro.core.specs).

One parser/formatter serves the strategy, failure and arrival
registries.  These tests pin the cross-grammar contract: every
pre-existing spec string parses exactly as it did when each registry
carried its own copy of the parser, ``parse -> format -> parse`` is a
fixed point in all three grammars, and malformed specs fail with the
historic messages listing the valid alternatives.
"""

import pytest

from repro.core.registry import (
    STRATEGIES,
    format_strategy_spec,
    parse_strategy_spec,
)
from repro.core.specs import COERCERS, SpecGrammar
from repro.network.failures import (
    FAILURE_MODELS,
    format_failure_spec,
    parse_failure_spec,
)
from repro.serve import loadgen
from repro.serve.loadgen import get_arrival

#: (spec, expected head, expected params) -- the historic surface of each
#: grammar, one table per registry.
STRATEGY_SPECS = [
    ("fixed-home", "fixed-home", {}),
    ("handopt", "handopt", {}),
    ("migratory", "migratory", {}),
    ("4-ary", "4-ary", {"arity": "4-ary", "embed": None, "remap": None}),
    ("2-4-ary", "2-4-ary", {"arity": "2-4-ary", "embed": None, "remap": None}),
    # Unregistered arity variants fall through to the tree family.
    ("4-32-ary", "tree", {"arity": "4-32-ary", "embed": None, "remap": None}),
    ("tree", "tree", {"arity": "4-ary", "embed": None, "remap": None}),
    ("tree:4-8", "tree", {"arity": "4-8-ary", "embed": None, "remap": None}),
    ("tree:4-8:embed=random", "tree",
     {"arity": "4-8-ary", "embed": "random", "remap": None}),
    ("tree:arity=16:remap=4", "tree",
     {"arity": "16-ary", "embed": None, "remap": 4}),
    ("dynrep", "dynrep", {"threshold": 2}),
    ("dynrep:threshold=3", "dynrep", {"threshold": 3}),
    ("adaptive", "adaptive", {"halflife": 50.0, "promote": 3.0, "demote": 0.5}),
    ("adaptive:halflife=50:promote=3", "adaptive",
     {"halflife": 50.0, "promote": 3.0, "demote": 0.5}),
]

FAILURE_SPECS = [
    ("none", "none", {}),
    ("linkflap:rate=0.05:seed=7:horizon=0.05:down=0.5", "linkflap",
     {"rate": 0.05, "seed": 7, "horizon": 0.05, "down": 0.5}),
    ("churn:nodes=0.05:seed=7:horizon=0.05", "churn",
     {"nodes": 0.05, "seed": 7, "horizon": 0.05, "revive": 0.0}),
    ("linkdown:link=3:at=0.01", "linkdown", {"link": 3, "at": 0.01, "up": -1.0}),
    ("nodedown:node=2:at=0.01:up=0.02", "nodedown",
     {"node": 2, "at": 0.01, "up": 0.02}),
]

ARRIVAL_SPECS = [
    ("poisson", "poisson", {}),
    ("bursty", "bursty", {"burst": 8}),
    ("bursty:burst=16", "bursty", {"burst": 16}),
]


class TestHistoricSpecsParseIdentically:
    @pytest.mark.parametrize("spec,head,params", STRATEGY_SPECS)
    def test_strategy(self, spec, head, params):
        family, got = parse_strategy_spec(spec)
        assert family.name == head
        assert got == params

    @pytest.mark.parametrize("spec,head,params", FAILURE_SPECS)
    def test_failure(self, spec, head, params):
        model, got = parse_failure_spec(spec)
        assert model.name == head
        assert got == params

    @pytest.mark.parametrize("spec,head,params", ARRIVAL_SPECS)
    def test_arrival(self, spec, head, params):
        proc, got = loadgen._GRAMMAR.parse(spec)
        assert proc.name == head
        assert got == params
        assert callable(get_arrival(spec))


class TestCrossGrammarRoundTrip:
    """``parse -> format -> parse`` is a fixed point in every grammar."""

    @pytest.mark.parametrize("spec,_head,_params", STRATEGY_SPECS)
    def test_strategy(self, spec, _head, _params):
        family, params = parse_strategy_spec(spec)
        canonical = format_strategy_spec(family, params)
        family2, params2 = parse_strategy_spec(canonical)
        assert family2 is family
        assert params2 == params
        assert format_strategy_spec(family2, params2) == canonical

    @pytest.mark.parametrize("spec,_head,_params", FAILURE_SPECS)
    def test_failure(self, spec, _head, _params):
        model, params = parse_failure_spec(spec)
        canonical = format_failure_spec(model, params)
        model2, params2 = parse_failure_spec(canonical)
        assert model2 is model
        assert params2 == params
        assert format_failure_spec(model2, params2) == canonical

    @pytest.mark.parametrize("spec,_head,_params", ARRIVAL_SPECS)
    def test_arrival(self, spec, _head, _params):
        proc, params = loadgen._GRAMMAR.parse(spec)
        canonical = loadgen._GRAMMAR.format(proc, params)
        proc2, params2 = loadgen._GRAMMAR.parse(canonical)
        assert proc2 is proc
        assert params2 == params

    def test_format_accepts_registered_name(self):
        assert format_strategy_spec("dynrep") == "dynrep:threshold=2"
        assert format_failure_spec("none") == "none"

    def test_locked_identity_rides_in_the_name(self):
        # The alias families pin their arity: the canonical form must not
        # re-emit it (``4-ary:arity=4-ary`` would not re-parse).
        family, params = parse_strategy_spec("4-ary")
        assert format_strategy_spec(family, params) == "4-ary"


class TestMalformedSpecs:
    """Errors name the offender and list the valid alternatives."""

    def test_unknown_strategy_lists_names(self):
        with pytest.raises(ValueError, match="unknown strategy 'warp'") as ei:
            parse_strategy_spec("warp")
        for name in STRATEGIES:
            assert name in str(ei.value)

    def test_unknown_failure_model_lists_names(self):
        with pytest.raises(ValueError, match="unknown failure model 'meteor'") as ei:
            parse_failure_spec("meteor:rate=1")
        for name in FAILURE_MODELS:
            assert name in str(ei.value)

    def test_unknown_arrival_lists_names(self):
        with pytest.raises(ValueError, match="unknown arrival process 'tide'") as ei:
            get_arrival("tide")
        assert "poisson" in str(ei.value) and "bursty" in str(ei.value)

    @pytest.mark.parametrize("parse,spec,kind", [
        (parse_strategy_spec, "dynrep:wat=1", "strategy 'dynrep'"),
        (parse_failure_spec, "churn:wat=1", "failure model 'churn'"),
        (get_arrival, "bursty:wat=1", "arrival process 'bursty'"),
    ])
    def test_unknown_parameter_lists_valid_ones(self, parse, spec, kind):
        with pytest.raises(ValueError, match="has no parameter 'wat'") as ei:
            parse(spec)
        assert kind in str(ei.value)

    def test_type_mismatch_names_expected_type(self):
        with pytest.raises(ValueError, match="expects int, got 'soon'"):
            parse_strategy_spec("dynrep:threshold=soon")
        with pytest.raises(ValueError, match="expects float, got 'x'"):
            parse_failure_spec("linkflap:rate=x")
        with pytest.raises(ValueError, match="expects int, got '8.5'"):
            get_arrival("bursty:burst=8.5")

    def test_locked_parameter_rejected(self):
        with pytest.raises(ValueError, match="pins 'arity'"):
            parse_strategy_spec("4-ary:arity=2-ary")

    def test_positional_rejected_where_undefined(self):
        with pytest.raises(ValueError, match="takes no positional"):
            parse_strategy_spec("dynrep:3")
        with pytest.raises(ValueError, match="takes no positional"):
            parse_failure_spec("none:fast")
        # Models with a positional still type-check the bare token.
        with pytest.raises(ValueError, match="'nodes' expects float, got 'fast'"):
            parse_failure_spec("churn:fast")

    @pytest.mark.parametrize("parse,kind", [
        (parse_strategy_spec, "strategy"),
        (parse_failure_spec, "failure"),
        (get_arrival, "arrival"),
    ])
    def test_non_string_and_empty_rejected(self, parse, kind):
        for bad in (None, 7, ""):
            with pytest.raises(ValueError, match=f"{kind} spec must be a non-empty"):
                parse(bad)

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError, match="empty segment"):
            parse_strategy_spec("dynrep::threshold=2")

    def test_validate_hook_fires(self):
        with pytest.raises(ValueError, match="threshold must be >= 1"):
            parse_strategy_spec("dynrep:threshold=0")
        with pytest.raises(ValueError, match="halflife must be > 0"):
            parse_strategy_spec("adaptive:halflife=0")


class TestCoercers:
    def test_bool_forms(self):
        assert COERCERS[bool]("true") is True
        assert COERCERS[bool]("1") is True
        assert COERCERS[bool]("False") is False
        assert COERCERS[bool]("0") is False

    def test_grammar_reads_registry_live(self):
        registry = {}
        g = SpecGrammar(spec_kind="toy", entry_kind="toy thing", registry=registry,
                        unknown_head=lambda h: f"unknown toy {h!r}")
        with pytest.raises(ValueError, match="unknown toy 'knob'"):
            g.parse("knob")

        class Entry:
            name = "knob"
            defaults = {"level": 1}

        registry["knob"] = Entry()
        entry, params = g.parse("knob:level=3")
        assert params == {"level": 3}
        assert g.format(entry, params) == "knob:level=3"
