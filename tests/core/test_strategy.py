"""Strategy factory and NullStrategy tests."""

import pytest

from repro.core.access_tree import AccessTreeStrategy
from repro.core.fixed_home import FixedHomeStrategy
from repro.core.registry import get_strategy
from repro.core.strategy import STRATEGY_NAMES, NullStrategy
from repro.network.machine import ZERO_COST
from repro.network.mesh import Mesh2D
from repro.runtime.launcher import Runtime

#: The paper's access-tree variants (the historic STRATEGY_NAMES tuple
#: minus fixed-home/handopt; the registry adds the post-paper families).
PAPER_TREE_VARIANTS = ("2-ary", "4-ary", "16-ary", "2-4-ary", "4-8-ary", "4-16-ary")


class TestFactory:
    @pytest.mark.parametrize("name", PAPER_TREE_VARIANTS)
    def test_tree_variants(self, name):
        s = get_strategy(name, Mesh2D(4, 4))
        assert isinstance(s, AccessTreeStrategy)
        assert s.name == name

    def test_paper_names_still_registered(self):
        for name in PAPER_TREE_VARIANTS + ("fixed-home", "handopt"):
            assert name in STRATEGY_NAMES

    def test_fixed_home(self):
        s = get_strategy("fixed-home", Mesh2D(4, 4))
        assert isinstance(s, FixedHomeStrategy)

    def test_handopt(self):
        assert isinstance(get_strategy("handopt", Mesh2D(4, 4)), NullStrategy)

    def test_general_lk_pattern(self):
        s = get_strategy("4-32-ary", Mesh2D(8, 8))
        assert s.tree.label == "4-32-ary"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_strategy("5-ary", Mesh2D(4, 4))

    def test_embedding_option(self):
        s = get_strategy("4-ary", Mesh2D(4, 4), embedding="random")
        assert s.embedding.name == "random"


class TestNullStrategy:
    def test_everything_raises(self):
        mesh = Mesh2D(2, 2)
        s = NullStrategy()
        rt = Runtime(mesh, s, ZERO_COST)
        with pytest.raises(RuntimeError):
            rt.create_var("x", 8, 0, None)
        with pytest.raises(RuntimeError):
            s.read(0, None, 0.0)
        with pytest.raises(RuntimeError):
            s.write(0, None, 1, 0.0)
        with pytest.raises(RuntimeError):
            s.lock(0, None, 0.0, lambda t: None)
        with pytest.raises(RuntimeError):
            s.unlock(0, None, 0.0)
