"""DynRepStrategy protocol tests: replicate after ``threshold`` remote
reads, write-invalidate, threshold=1 == fixed-home."""

import pytest

from repro.core.dynrep import DynRepStrategy
from repro.network.machine import ZERO_COST
from repro.network.mesh import Mesh2D
from repro.network.topology import make_topology
from repro.runtime.launcher import Runtime
from repro.workloads import get_workload


def drive(mesh, program, seed=0, threshold=2, **kw):
    strat = DynRepStrategy(mesh, seed=seed, threshold=threshold)
    rt = Runtime(mesh, strat, ZERO_COST, seed=seed, **kw)
    res = rt.run(program)
    return strat, rt, res


class TestThresholdSemantics:
    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            DynRepStrategy(Mesh2D(2, 2), threshold=0)
        with pytest.raises(ValueError, match="threshold"):
            DynRepStrategy(Mesh2D(2, 2), threshold=-3)

    def test_replica_earned_at_threshold(self):
        """Below the threshold a reader keeps nothing; the threshold-th
        remote read creates the replica, and reads after it hit."""
        mesh = Mesh2D(2, 2)
        handles = {}

        def program(env):
            if env.rank == 0:
                handles["x"] = env.create("x", 64, value=9)
            yield from env.barrier()
            if env.rank == 3:
                for _ in range(4):
                    v = yield from env.read(handles["x"])
                    assert v == 9
            yield from env.barrier()

        strat, rt, _ = drive(mesh, program, threshold=3)
        var = handles["x"]
        # reads 1, 2 forwarded (no replica); read 3 replicates; read 4 hits
        assert strat.misses == 3 and strat.hits == 1
        assert 3 in strat.copy_procs(var)
        assert strat.replications == 1

    def test_write_invalidates_and_resets_progress(self):
        """A write destroys replicas AND the replication counters: the
        reader must re-earn its replica from scratch."""
        mesh = Mesh2D(2, 2)
        handles = {}

        def program(env):
            if env.rank == 0:
                handles["x"] = env.create("x", 64, value=0)
            yield from env.barrier()
            if env.rank == 3:
                yield from env.read(handles["x"])  # count 1 (of 2)
            yield from env.barrier()
            if env.rank == 1:
                yield from env.write(handles["x"], 1)  # resets counters
            yield from env.barrier()
            if env.rank == 3:
                yield from env.read(handles["x"])  # count 1 again
            yield from env.barrier()

        strat, rt, _ = drive(mesh, program, threshold=2)
        var = handles["x"]
        assert 3 not in strat.copy_procs(var)  # never reached the threshold
        assert strat.replications == 0
        # The post-write read fetched from the writer, moving ownership
        # back to main memory (HOME = -1), exactly like fixed home.
        assert strat.owner_of(var) == -1
        assert 1 in strat.copy_procs(var)  # the writer kept its copy

    def test_replicated_reader_is_invalidated_by_write(self):
        mesh = Mesh2D(2, 2)
        handles = {}

        def program(env):
            if env.rank == 0:
                handles["x"] = env.create("x", 64, value=0)
            yield from env.barrier()
            if env.rank == 3:
                yield from env.read(handles["x"])
                yield from env.read(handles["x"])  # replicates (threshold 2)
            yield from env.barrier()
            if env.rank == 1:
                yield from env.write(handles["x"], 5)
            yield from env.barrier()

        strat, rt, _ = drive(mesh, program, threshold=2)
        var = handles["x"]
        assert strat.copy_procs(var) == {1}  # writer holds the sole copy
        assert rt.registry.get(var) == 5


class TestFixedHomeEquivalence:
    @pytest.mark.parametrize("kind", ["mesh", "torus", "hypercube"])
    @pytest.mark.parametrize("workload", ["zipf", "uniform"])
    def test_threshold_one_is_fixed_home(self, kind, workload):
        """dynrep:threshold=1 replicates on the first remote read --
        behaviorally identical to the fixed home strategy, message for
        message (only the strategy label differs)."""
        topo = make_topology(kind, 4)
        wl = get_workload(workload)
        params = {"ops": 24} if workload == "zipf" else {"rounds": 1, "n_vars": 16}
        a = wl.run(topo, "dynrep:threshold=1", seed=2, params=params)
        b = wl.run(topo, "fixed-home", seed=2, params=params)
        da, db = a.as_dict(), b.as_dict()
        assert da.pop("strategy") == "dynrep:threshold=1"
        assert db.pop("strategy") == "fixed-home"
        assert da == db


class TestDeterminism:
    @pytest.mark.parametrize("kind", ["mesh", "torus", "hypercube"])
    def test_same_seed_identical(self, kind):
        topo = make_topology(kind, 4)
        wl = get_workload("zipf")
        a = wl.run(topo, "dynrep:threshold=3", seed=5, params={"ops": 16})
        b = wl.run(topo, "dynrep:threshold=3", seed=5, params={"ops": 16})
        assert a.as_dict() == b.as_dict()

    def test_deterministic_under_capacity_pressure(self):
        mesh = Mesh2D(2, 2)
        wl = get_workload("zipf")
        kw = dict(seed=3, params={"ops": 32, "n_vars": 8, "payload": 128},
                  capacity_bytes=384)
        a = wl.run(mesh, "dynrep", **kw)
        b = wl.run(mesh, "dynrep", **kw)
        assert a.as_dict() == b.as_dict()
        assert a.evictions == b.evictions
