"""Strategy-registry completeness and spec-parser tests (mirrors the
workload/experiment registry test suites)."""

import pytest

from repro.core import (
    AccessTreeStrategy,
    DynRepStrategy,
    FixedHomeStrategy,
    MigratoryStrategy,
    NullStrategy,
    StrategyFamily,
    get_strategy,
    parse_strategy_spec,
    register_strategy,
    strategy_names,
)
from repro.core.registry import STRATEGIES
from repro.core.strategy import STRATEGY_NAMES
from repro.network.machine import ZERO_COST
from repro.network.mesh import Mesh2D
from repro.network.topology import make_topology
from repro.runtime.launcher import Runtime
from repro.workloads import get_workload

TOPOLOGY_KINDS = ("mesh", "torus", "hypercube")


class TestRegistryCompleteness:
    def test_every_name_round_trips_through_the_parser(self):
        for name in strategy_names():
            family, params = parse_strategy_spec(name)
            assert family.name == name
            assert params == dict(family.defaults) or name in params.values()

    def test_derived_names_view_is_live(self):
        """STRATEGY_NAMES derives from the registry: registering a family
        extends it without touching any frozen tuple."""
        assert list(STRATEGY_NAMES) == strategy_names()
        assert "migratory" in STRATEGY_NAMES and "dynrep" in STRATEGY_NAMES
        family = StrategyFamily(
            name="test-dummy",
            description="registered by the live-view test",
            build=lambda topology, params, **kw: NullStrategy(),
        )
        register_strategy(family)
        try:
            assert "test-dummy" in STRATEGY_NAMES
            assert "test-dummy" in strategy_names()
        finally:
            del STRATEGIES["test-dummy"]
        assert "test-dummy" not in STRATEGY_NAMES

    def test_reregistering_a_different_builder_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy(StrategyFamily(
                name="fixed-home",
                description="imposter",
                build=lambda topology, params, **kw: NullStrategy(),
            ))

    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    def test_every_data_strategy_attaches_and_runs_everywhere(self, kind):
        """Registry contract: every registered name (except the
        message-passing-only handopt) attaches to a Runtime on every
        topology family and completes a smoke cell."""
        topo = make_topology(kind, 4)
        wl = get_workload("zipf")
        for name in strategy_names():
            if name == "handopt":
                continue
            res = wl.run(topo, name, seed=0, params={"ops": 4, "n_vars": 8})
            assert res.time > 0
            assert res.hits + res.misses > 0

    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    def test_handopt_attaches_and_runs_everywhere(self, kind):
        topo = make_topology(kind, 4)
        rt = Runtime(topo, get_strategy("handopt", topo), ZERO_COST)

        def program(env):
            right = (env.rank + 1) % env.nprocs
            yield from env.send(right, env.rank, 4, "tok")
            got = yield from env.recv("tok")
            assert got == (env.rank - 1) % env.nprocs
            yield from env.barrier()

        res = rt.run(program)
        assert res.stats.total_msgs > 0


class TestSpecParser:
    def test_tree_spec_with_positional_and_params(self):
        s = get_strategy("tree:4-8:embed=random", Mesh2D(8, 8))
        assert isinstance(s, AccessTreeStrategy)
        assert s.arity == "4-8-ary"
        assert s.embedding.name == "random"

    def test_tree_positional_normalization(self):
        assert get_strategy("tree:16", Mesh2D(4, 4)).arity == "16-ary"
        assert get_strategy("tree", Mesh2D(4, 4)).arity == "4-ary"

    def test_paper_alias_accepts_tree_params(self):
        s = get_strategy("2-4-ary:embed=random", Mesh2D(4, 4))
        assert s.arity == "2-4-ary"
        assert s.embedding.name == "random"

    def test_tree_remap_param(self):
        s = get_strategy("tree:4:remap=16", Mesh2D(4, 4))
        assert s.remap_threshold == 16

    def test_spec_params_override_call_site_knobs(self):
        s = get_strategy("tree:embed=random", Mesh2D(4, 4), embedding="modified")
        assert s.embedding.name == "random"

    def test_call_site_knobs_apply_when_spec_is_silent(self):
        s = get_strategy("4-ary", Mesh2D(4, 4), embedding="random", remap_threshold=8)
        assert s.embedding.name == "random"
        assert s.remap_threshold == 8

    def test_dynrep_threshold(self):
        s = get_strategy("dynrep:threshold=3", Mesh2D(4, 4))
        assert isinstance(s, DynRepStrategy)
        assert s.threshold == 3
        assert s.name == "dynrep:threshold=3"
        # The canonical instance name round-trips through the parser.
        family, params = parse_strategy_spec(s.name)
        assert family.name == "dynrep" and params["threshold"] == 3

    def test_unregistered_arity_falls_through_to_tree(self):
        s = get_strategy("4-32-ary", Mesh2D(8, 8))
        assert isinstance(s, AccessTreeStrategy)
        assert s.arity == "4-32-ary"

    def test_arity_key_value_form_normalizes_like_positional(self):
        """tree:arity=4-8 and tree:4-8 are the same spec."""
        assert get_strategy("tree:arity=4-8", Mesh2D(8, 8)).arity == "4-8-ary"

    def test_alias_identity_params_are_locked(self):
        """An alias family's name IS its arity: overriding it would make
        the recorded strategy_family contradict the strategy that ran."""
        with pytest.raises(ValueError, match="pins 'arity'"):
            parse_strategy_spec("4-ary:arity=2-ary")
        with pytest.raises(ValueError, match="pins 'arity'"):
            parse_strategy_spec("4-32-ary:arity=2-ary")
        with pytest.raises(ValueError, match="positional"):
            parse_strategy_spec("4-32-ary:2-8")

    def test_fixed_home_and_migratory_builders(self):
        assert isinstance(get_strategy("fixed-home", Mesh2D(4, 4)), FixedHomeStrategy)
        assert isinstance(get_strategy("migratory", Mesh2D(4, 4)), MigratoryStrategy)

    def test_deprecated_make_strategy_wrapper_is_gone(self):
        """The one-cycle deprecation window closed: ``get_strategy`` is
        the only factory, at every import surface."""
        import repro
        import repro.core
        import repro.core.strategy

        for mod in (repro, repro.core, repro.core.strategy):
            assert not hasattr(mod, "make_strategy")
            assert "make_strategy" not in getattr(mod, "__all__", ())

    @pytest.mark.parametrize("bad", [
        "",
        "   ",
        "nope",
        "tetris",
        "5-ary",                 # invalid access-tree arity
        "tree:5-ary",
        "tree:embed=weird",
        "tree:remap=0",
        "dynrep:threshold=0",    # the issue's canonical malformed spec
        "dynrep:threshold=-1",
        "dynrep:threshold=x",
        "dynrep:bogus=1",
        "fixed-home:extra",      # family takes no positional
        "fixed-home:x=1",        # ... and no parameters
        "migratory:1",
        "4-ary:",                # empty segment
    ])
    def test_malformed_specs_raise_clean_errors(self, bad):
        with pytest.raises(ValueError):
            parse_strategy_spec(bad)

    def test_unknown_name_error_lists_valid_names(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            parse_strategy_spec("octopus")
        with pytest.raises(ValueError, match="fixed-home"):
            parse_strategy_spec("octopus")


class TestSpecDeterminism:
    @pytest.mark.parametrize("spec", ["migratory", "dynrep:threshold=3",
                                      "tree:4-8:embed=random"])
    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    def test_same_seed_same_result(self, spec, kind):
        """Registry strategies are deterministic: same seed, same spec,
        same topology => identical simulated quantities."""
        topo = make_topology(kind, 4)
        wl = get_workload("zipf")
        a = wl.run(topo, spec, seed=7, params={"ops": 12, "n_vars": 8})
        b = wl.run(topo, spec, seed=7, params={"ops": 12, "n_vars": 8})
        assert a.as_dict() == b.as_dict()
