"""Hierarchical mesh decomposition tests."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import build_tree, parse_arity
from repro.network.mesh import Mesh2D

mesh_shapes = st.tuples(
    st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=10)
)
strides = st.sampled_from([1, 2, 4])


class TestParseArity:
    @pytest.mark.parametrize(
        "name,expect",
        [
            ("2-ary", (1, 1)),
            ("4-ary", (2, 1)),
            ("16-ary", (4, 1)),
            ("2-4-ary", (1, 4)),
            ("4-8-ary", (2, 8)),
            ("4-16-ary", (2, 16)),
            ("2-32-ary", (1, 32)),
            ("16-64-ary", (4, 64)),
        ],
    )
    def test_known_names(self, name, expect):
        assert parse_arity(name) == expect

    @pytest.mark.parametrize("bad", ["3-ary", "4-2-ary", "foo", "2-ary-4", "ary"])
    def test_bad_names(self, bad):
        with pytest.raises(ValueError):
            parse_arity(bad)


class TestBinaryTree:
    def test_paper_example_m43(self):
        """Figure 1 of the paper: M(4,3) decomposes over 4 levels."""
        tree = build_tree(Mesh2D(4, 3), stride=1)
        assert tree.height == 4
        root = tree.nodes[tree.root]
        assert (root.rows, root.cols) == (4, 3)
        # Level 1: two 2x3 submeshes (rows split first since rows >= cols).
        kids = [tree.nodes[c] for c in root.children]
        assert [(k.rows, k.cols) for k in kids] == [(2, 3), (2, 3)]
        # Level 2 splits columns of 2x3 into 2x2 and 2x1.
        gkids = [tree.nodes[c] for c in kids[0].children]
        assert [(g.rows, g.cols) for g in gkids] == [(2, 2), (2, 1)]

    def test_every_proc_has_unique_leaf(self):
        tree = build_tree(Mesh2D(5, 7), stride=1)
        assert sorted(tree.leaf_of_proc) == sorted(
            {tree.leaf_of_proc[p] for p in range(35)}
        )

    def test_binary_node_count(self):
        # A decomposition into single processors has exactly 2P-1 nodes.
        tree = build_tree(Mesh2D(4, 4), stride=1)
        assert len(tree) == 2 * 16 - 1

    def test_single_processor_mesh(self):
        tree = build_tree(Mesh2D(1, 1), stride=1)
        assert len(tree) == 1
        assert tree.height == 0


@given(mesh_shapes, strides)
@settings(max_examples=40, deadline=None)
def test_children_tile_parent(shape, stride):
    """Every node's children partition exactly the parent's submesh."""
    tree = build_tree(Mesh2D(*shape), stride=stride)
    for node in tree.nodes:
        if node.is_leaf:
            assert node.size == 1
            continue
        cells = set()
        for c in node.children:
            ch = tree.nodes[c]
            for r in range(ch.row0, ch.row0 + ch.rows):
                for k in range(ch.col0, ch.col0 + ch.cols):
                    assert (r, k) not in cells, "overlapping children"
                    cells.add((r, k))
        expect = {
            (r, k)
            for r in range(node.row0, node.row0 + node.rows)
            for k in range(node.col0, node.col0 + node.cols)
        }
        assert cells == expect


@given(mesh_shapes, strides, st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_terminal_variant_leaf_structure(shape, stride, terminal):
    """l-k-ary variants: internal nodes sitting just above leaves cover at
    most ``terminal`` processors (or are binary-split products)."""
    tree = build_tree(Mesh2D(*shape), stride=stride, terminal=terminal)
    for p in range(tree.mesh.n_nodes):
        leaf = tree.nodes[tree.leaf_of_proc[p]]
        assert leaf.size == 1
        assert tree.mesh.node(leaf.row0, leaf.col0) == p


class TestArityVariants:
    def test_4ary_skips_odd_levels(self):
        t2 = build_tree(Mesh2D(8, 8), stride=1)
        t4 = build_tree(Mesh2D(8, 8), stride=2)
        assert t4.height * 2 == t2.height
        assert t4.max_degree == 4

    def test_16ary_degree(self):
        t16 = build_tree(Mesh2D(8, 8), stride=4)
        assert t16.max_degree == 16
        # 8x8 has binary depth 6, so 16-ary height is ceil(6/4) = 2.
        assert t16.height == 2

    def test_2_4_ary_terminal_children(self):
        tree = build_tree(Mesh2D(4, 4), stride=1, terminal=4)
        # Terminal nodes represent 4-processor submeshes with 4 leaf kids.
        terminals = [
            n for n in tree.nodes if not n.is_leaf and all(tree.nodes[c].is_leaf for c in n.children)
        ]
        assert terminals
        for t in terminals:
            assert t.size <= 4
            assert len(t.children) == t.size

    def test_labels(self):
        assert build_tree(Mesh2D(4, 4), 1, 1).label == "2-ary"
        assert build_tree(Mesh2D(4, 4), 2, 1).label == "4-ary"
        assert build_tree(Mesh2D(4, 4), 4, 1).label == "16-ary"
        assert build_tree(Mesh2D(4, 4), 2, 8).label == "4-8-ary"

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_tree(Mesh2D(4, 4), stride=3)
        with pytest.raises(ValueError):
            build_tree(Mesh2D(4, 4), stride=1, terminal=0)

    def test_flatter_trees_are_shorter(self):
        m = Mesh2D(8, 8)
        h2 = build_tree(m, 1, 1).height
        h4 = build_tree(m, 2, 1).height
        h16 = build_tree(m, 4, 1).height
        h24 = build_tree(m, 1, 4).height
        assert h2 > h4 > h16
        assert h24 < h2


class TestTreePaths:
    @given(mesh_shapes, strides)
    @settings(max_examples=25, deadline=None)
    def test_tree_path_matches_networkx(self, shape, stride):
        tree = build_tree(Mesh2D(*shape), stride=stride)
        g = nx.Graph()
        for n in tree.nodes:
            for c in n.children:
                g.add_edge(n.idx, c)
        if len(tree) == 1:
            assert tree.tree_path(0, 0) == [0]
            return
        import random

        rng = random.Random(42)
        nodes = [n.idx for n in tree.nodes]
        for _ in range(10):
            a, b = rng.choice(nodes), rng.choice(nodes)
            expect = nx.shortest_path(g, a, b)
            assert tree.tree_path(a, b) == expect

    def test_tree_distance(self):
        tree = build_tree(Mesh2D(4, 4), stride=1)
        leaves = [tree.leaf_of_proc[p] for p in range(16)]
        assert tree.tree_distance(leaves[0], leaves[0]) == 0
        # Any two distinct leaves are connected through some ancestor.
        assert tree.tree_distance(leaves[0], leaves[15]) == 2 * tree.depth[leaves[0]]


class TestInorder:
    def test_leaves_inorder_is_permutation(self):
        tree = build_tree(Mesh2D(4, 4), stride=1)
        procs = tree.procs_inorder()
        assert sorted(procs) == list(range(16))

    def test_inorder_locality(self):
        """Consecutive in-order processors are close on the mesh: the first
        half of the order covers one half of the decomposition."""
        tree = build_tree(Mesh2D(4, 4), stride=1)
        procs = tree.procs_inorder()
        top = tree.nodes[tree.root].children[0]
        first_half = set(tree.procs_under(top))
        assert set(procs[:8]) == first_half

    def test_procs_under_counts(self):
        tree = build_tree(Mesh2D(4, 4), stride=2)
        assert len(tree.procs_under(tree.root)) == 16
        for c in tree.nodes[tree.root].children:
            assert len(tree.procs_under(c)) == 4

    def test_leaves_under(self):
        tree = build_tree(Mesh2D(4, 4), stride=2)
        assert len(list(tree.leaves_under(tree.root))) == 16
