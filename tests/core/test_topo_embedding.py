"""Per-topology access-tree embeddings: decomposition + embedding
invariants on torus and hypercube, and the mesh byte-identity guard."""

import pytest

from repro.core.decomposition import build_tree
from repro.core.embedding import (
    ModifiedEmbedding,
    SubcubeEmbedding,
    TorusModifiedEmbedding,
    make_embedding,
)
from repro.network.mesh import Mesh2D
from repro.network.topology import Hypercube
from repro.network.torus import Torus2D


def _in_region(tree, node, proc):
    n = tree.nodes[node]
    return proc in tree.mesh.submesh_nodes(n.row0, n.col0, n.rows, n.cols)


@pytest.mark.parametrize("topo", [Mesh2D(8, 8), Torus2D(8, 8), Hypercube(6)])
@pytest.mark.parametrize("kind", ["modified", "random"])
def test_hosts_stay_in_their_region(topo, kind):
    tree = build_tree(topo, stride=2)
    emb = make_embedding(kind, tree, seed=3)
    for node in range(len(tree)):
        host = emb.host(vid=7, node=node)
        assert 0 <= host < topo.n_nodes
        assert _in_region(tree, node, host)


@pytest.mark.parametrize("topo", [Mesh2D(4, 4), Torus2D(4, 4), Hypercube(4)])
def test_leaves_pinned_to_their_processor(topo):
    tree = build_tree(topo, stride=1)
    emb = make_embedding("modified", tree, seed=0)
    for proc in topo.nodes():
        assert emb.host(vid=0, node=tree.leaf_of_proc[proc]) == proc


def test_factory_selects_per_topology_variant():
    mesh_tree = build_tree(Mesh2D(4, 4))
    torus_tree = build_tree(Torus2D(4, 4))
    cube_tree = build_tree(Hypercube(4))
    assert type(make_embedding("modified", mesh_tree)) is ModifiedEmbedding
    assert type(make_embedding("modified", torus_tree)) is TorusModifiedEmbedding
    assert type(make_embedding("modified", cube_tree)) is SubcubeEmbedding


def test_mesh_modified_embedding_unchanged():
    """Byte-identity guard: the paper's mesh embedding must keep producing
    the exact hosts it produced in the seed (same RNG keying, same
    inheritance formula)."""
    tree = build_tree(Mesh2D(4, 4), stride=1)
    emb = make_embedding("modified", tree, seed=0)
    hosts = [emb.host(0, n) for n in range(len(tree))]
    # Recompute the expectation from the documented formula.
    expect = []
    for n in range(len(tree)):
        tn = tree.nodes[n]
        if tn.size == 1:
            expect.append(tree.mesh.node(tn.row0, tn.col0))
        elif tn.parent is None:
            expect.append(hosts[0])  # root: random draw, self-consistent
        else:
            p = tree.nodes[tn.parent]
            pr, pc = tree.mesh.coord(hosts[tn.parent])
            li, lj = pr - p.row0, pc - p.col0
            expect.append(tree.mesh.node(tn.row0 + li % tn.rows, tn.col0 + lj % tn.cols))
    assert hosts == expect


def _ring_dist(a, b, ring):
    d = abs(a - b)
    return min(d, ring - d)


def test_torus_embedding_is_wrap_aware():
    """The child hosts at the ring-nearest position of its box to the
    parent's host, per axis: no position of the child box is closer, and a
    parent inside the box stays put."""
    topo = Torus2D(8, 8)
    tree = build_tree(topo, stride=1)
    emb = TorusModifiedEmbedding(tree, seed=0)
    for vid in range(6):
        for node in range(len(tree)):
            n = tree.nodes[node]
            if n.parent is None or n.size == 1:
                continue
            host = emb.host(vid, node)
            parent_host = emb.host(vid, n.parent)
            pr, pc = topo.coord(parent_host)
            hr, hc = topo.coord(host)
            assert _ring_dist(hr, pr, topo.rows) == min(
                _ring_dist(r, pr, topo.rows) for r in range(n.row0, n.row0 + n.rows)
            )
            assert _ring_dist(hc, pc, topo.cols) == min(
                _ring_dist(c, pc, topo.cols) for c in range(n.col0, n.col0 + n.cols)
            )
            # A parent inside the child box stays put.
            if n.row0 <= pr < n.row0 + n.rows and n.col0 <= pc < n.col0 + n.cols:
                assert (hr, hc) == (pr, pc)


def test_torus_embedding_beats_mesh_formula_across_the_wrap():
    """The case the mesh formula gets wrong on a torus: a parent in the far
    half of its box is one wrap hop from the child's box; the wrap-aware
    embedding must host the child within that hop count, not reflect it a
    half-box away."""
    topo = Torus2D(8, 8)
    tree = build_tree(topo, stride=1)
    emb = TorusModifiedEmbedding(tree, seed=0)
    improved = 0
    for vid in range(20):
        for node in range(len(tree)):
            n = tree.nodes[node]
            if n.parent is None or n.size == 1:
                continue
            p = tree.nodes[n.parent]
            host = emb.host(vid, node)
            parent_host = emb.host(vid, n.parent)
            d_wrap = topo.distance(host, parent_host)
            # The mesh formula's choice for the same parent host.
            pr, pc = topo.coord(parent_host)
            li, lj = pr - p.row0, pc - p.col0
            mesh_choice = topo.node(n.row0 + li % n.rows, n.col0 + lj % n.cols)
            d_mesh = topo.distance(mesh_choice, parent_host)
            assert d_wrap <= d_mesh
            if d_wrap < d_mesh:
                improved += 1
    assert improved > 0, "wrap-aware placement never differed from the mesh formula"


def test_subcube_embedding_keeps_free_bits():
    """The hypercube embedding preserves the parent host's low (free)
    address bits: parent-child distance is bounded by the number of newly
    fixed dimensions."""
    topo = Hypercube(6)
    tree = build_tree(topo, stride=2)  # 4-ary: two bits fixed per level
    emb = SubcubeEmbedding(tree, seed=1)
    for vid in range(6):
        for node in range(len(tree)):
            n = tree.nodes[node]
            if n.parent is None or n.size == 1:
                continue
            host = emb.host(vid, node)
            parent_host = emb.host(vid, n.parent)
            size = n.size
            assert host & (size - 1) == parent_host & (size - 1)
            assert n.row0 <= host < n.row0 + size
            p = tree.nodes[n.parent]
            fixed_bits = (p.size // size).bit_length() - 1
            assert topo.distance(host, parent_host) <= fixed_bits


@pytest.mark.parametrize("topo", [Torus2D(8, 8), Hypercube(6)])
def test_embedding_deterministic_in_seed_and_vid(topo):
    tree = build_tree(topo, stride=2)
    a = make_embedding("modified", tree, seed=5)
    b = make_embedding("modified", tree, seed=5)
    c = make_embedding("modified", tree, seed=6)
    hosts_a = [a.host(3, n) for n in range(len(tree))]
    hosts_b = [b.host(3, n) for n in range(len(tree))]
    hosts_c = [c.host(3, n) for n in range(len(tree))]
    assert hosts_a == hosts_b
    assert hosts_a != hosts_c  # the root draw depends on the seed
