"""Access tree strategy: protocol semantics and invariants.

The central invariant from the paper: "For each object x, the nodes that
hold a copy of x always build a connected component in the access tree."
The hypothesis tests drive random read/write sequences and check the
component's connectivity, the topmost pointer, and nearest-copy routing
after every operation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access_tree import AccessTreeStrategy
from repro.core.registry import get_strategy
from repro.network.machine import GCEL, ZERO_COST
from repro.network.mesh import Mesh2D
from repro.runtime.launcher import Runtime


class Driver:
    """Drives raw strategy operations without SPMD programs: flow
    completions are captured instead of resuming generators."""

    def __init__(self, strategy_name="4-ary", mesh=None, machine=ZERO_COST, seed=0, **kw):
        self.mesh = mesh or Mesh2D(4, 4)
        self.strategy = get_strategy(strategy_name, self.mesh, seed=seed)
        self.rt = Runtime(self.mesh, self.strategy, machine, seed=seed, **kw)
        self.completions = []
        self.rt.resume = lambda p, t, v: self.completions.append((p, t, v))

    def create(self, name, size, creator, value):
        return self.rt.create_var(name, size, creator, value)

    def read(self, p, var):
        res = self.strategy.read(p, var, self.rt.sim.now)
        if res is not None:
            return res[1], True  # (value, was_hit)
        self.rt.sim.run()
        _, _, value = self.completions.pop()
        return value, False

    def write(self, p, var, value):
        res = self.strategy.write(p, var, value, self.rt.sim.now)
        if res is None:
            self.rt.sim.run()
            self.completions.pop()
            return False  # remote write
        return True  # local write


def component_is_connected(strategy: AccessTreeStrategy, var) -> bool:
    nodes = strategy.copy_nodes(var)
    if not nodes:
        return False
    tree = strategy.tree
    start = next(iter(nodes))
    seen = {start}
    stack = [start]
    while stack:
        n = stack.pop()
        tn = tree.nodes[n]
        for nb in ([tn.parent] if tn.parent is not None else []) + tn.children:
            if nb in nodes and nb not in seen:
                seen.add(nb)
                stack.append(nb)
    return seen == nodes


def top_is_unique_shallowest(strategy: AccessTreeStrategy, var) -> bool:
    nodes = strategy.copy_nodes(var)
    cs = strategy._copies[var.vid]
    depths = [strategy.tree.depth[n] for n in nodes]
    return (
        cs.top in nodes
        and strategy.tree.depth[cs.top] == min(depths)
        and depths.count(min(depths)) == 1
    )


class TestBasicSemantics:
    def test_initial_copy_at_creator_leaf(self):
        d = Driver()
        var = d.create("x", 64, creator=5, value=1)
        assert d.strategy.copy_nodes(var) == {d.strategy.tree.leaf_of_proc[5]}
        assert d.strategy.copy_procs(var) == {5}

    def test_read_by_creator_is_hit(self):
        d = Driver()
        var = d.create("x", 64, creator=5, value=42)
        value, hit = d.read(5, var)
        assert value == 42 and hit
        assert d.strategy.hits == 1 and d.strategy.misses == 0

    def test_remote_read_creates_path_copies(self):
        d = Driver()
        var = d.create("x", 64, creator=0, value=7)
        value, hit = d.read(15, var)
        assert value == 7 and not hit
        nodes = d.strategy.copy_nodes(var)
        tree = d.strategy.tree
        assert tree.leaf_of_proc[15] in nodes
        assert tree.leaf_of_proc[0] in nodes
        # Copies are exactly the tree path between the two leaves.
        path = set(tree.tree_path(tree.leaf_of_proc[15], tree.leaf_of_proc[0]))
        assert nodes == path

    def test_second_read_is_hit(self):
        d = Driver()
        var = d.create("x", 64, creator=0, value=7)
        d.read(15, var)
        _, hit = d.read(15, var)
        assert hit

    def test_write_collapses_to_writer_leaf(self):
        d = Driver()
        var = d.create("x", 64, creator=0, value=7)
        for p in (3, 9, 15):
            d.read(p, var)
        d.write(9, var, 100)
        # Writer had a copy, so the component collapses to its leaf only.
        assert d.strategy.copy_nodes(var) == {d.strategy.tree.leaf_of_proc[9]}
        assert d.read(2, var)[0] == 100

    def test_local_write_when_sole_copy(self):
        d = Driver()
        var = d.create("x", 64, creator=4, value=0)
        assert d.write(4, var, 9) is True  # purely local
        assert d.strategy.write_local == 1
        assert d.rt.sim.stats.total_msgs == 0

    def test_write_by_non_holder_leaves_path(self):
        d = Driver()
        var = d.create("x", 64, creator=0, value=7)
        d.write(15, var, 50)
        tree = d.strategy.tree
        path = set(tree.tree_path(tree.leaf_of_proc[15], tree.leaf_of_proc[0]))
        assert d.strategy.copy_nodes(var) == path
        assert d.read(15, var)[1] is True  # writer holds a copy

    def test_invalidation_reaches_all_copies(self):
        d = Driver()
        var = d.create("x", 64, creator=0, value=1)
        readers = [3, 5, 10, 12, 15]
        for p in readers:
            d.read(p, var)
        d.write(0, var, 2)
        # All reader leaves lost their copies: next reads are misses.
        for p in readers:
            _, hit = d.read(p, var)
            assert not hit
            break  # first one suffices (others now may hit new copies)

    def test_read_your_own_write(self):
        d = Driver()
        var = d.create("x", 64, creator=0, value=1)
        d.write(7, var, 123)
        assert d.read(7, var) == (123, True)


class TestRouting:
    def test_request_path_finds_nearest_copy(self):
        """The request path endpoint is the true nearest component member
        (brute force over all members)."""
        d = Driver("2-ary")
        tree = d.strategy.tree
        var = d.create("x", 64, creator=0, value=1)
        for p in (1, 2, 3, 7, 11):
            d.read(p, var)
        cs = d.strategy._copies[var.vid]
        for p in range(16):
            leaf = tree.leaf_of_proc[p]
            path = d.strategy._request_path(cs, leaf)
            u = path[-1]
            assert u in cs.nodes
            best = min(tree.tree_distance(leaf, n) for n in cs.nodes)
            assert tree.tree_distance(leaf, u) == best

    def test_messages_follow_tree_hosts(self):
        """Read traffic only moves between hosts of adjacent tree nodes."""
        d = Driver("4-ary", machine=GCEL)
        var = d.create("x", 256, creator=0, value=1)
        d.read(15, var)
        assert d.rt.sim.stats.total_msgs > 0


ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=15),  # processor
        st.integers(min_value=0, max_value=2),  # variable index
    ),
    min_size=1,
    max_size=40,
)


@given(ops=ops, arity=st.sampled_from(["2-ary", "4-ary", "16-ary", "2-4-ary", "4-16-ary"]))
@settings(max_examples=60, deadline=None)
def test_component_invariants_hold_under_random_ops(ops, arity):
    """After every operation: the copy set is a connected subtree, the
    topmost pointer is the unique shallowest member, and reads return the
    last written value."""
    d = Driver(arity)
    variables = [d.create(f"v{i}", 64, creator=i * 5, value=("init", i)) for i in range(3)]
    last = {i: ("init", i) for i in range(3)}
    for n, (kind, p, vi) in enumerate(ops):
        var = variables[vi]
        if kind == "read":
            value, _ = d.read(p, var)
            assert value == last[vi]
        else:
            d.write(p, var, ("w", n))
            last[vi] = ("w", n)
        assert component_is_connected(d.strategy, var)
        assert top_is_unique_shallowest(d.strategy, var)


@given(ops=ops)
@settings(max_examples=30, deadline=None)
def test_invariants_hold_under_bounded_memory(ops):
    """Same invariants with tight memory: evictions must never disconnect
    a component or drop a last copy."""
    d = Driver("2-ary", capacity_bytes=200)
    variables = [d.create(f"v{i}", 64, creator=i * 5, value=i) for i in range(3)]
    last = {i: i for i in range(3)}
    for n, (kind, p, vi) in enumerate(ops):
        var = variables[vi]
        if kind == "read":
            value, _ = d.read(p, var)
            assert value == last[vi]
        else:
            d.write(p, var, n)
            last[vi] = n
        for v2 in variables:
            assert component_is_connected(d.strategy, v2)
            assert top_is_unique_shallowest(d.strategy, v2)


class TestCounters:
    def test_hit_miss_accounting(self):
        d = Driver()
        var = d.create("x", 64, creator=0, value=1)
        d.read(0, var)  # hit
        d.read(5, var)  # miss
        d.read(5, var)  # hit
        assert d.strategy.hits == 2
        assert d.strategy.misses == 1

    def test_reset_counters(self):
        d = Driver()
        var = d.create("x", 64, creator=0, value=1)
        d.read(5, var)
        d.write(5, var, 2)
        d.strategy.reset_counters()
        assert d.strategy.hits == 0
        assert d.strategy.misses == 0
        assert d.strategy.write_local == 0
        assert d.strategy.write_remote == 0

    def test_repr(self):
        d = Driver()
        assert "4-ary" in repr(d.strategy)
