"""Access-tree node remapping tests.

The theoretical strategy re-randomizes a tree node's host "when too many
accesses are directed to the same node"; the paper omits this in DIVA
("we omit this remapping as we believe that the constant overhead ... will
not be retained in practice").  We implement it as an opt-in so the claim
can be tested; these tests check the mechanism, and the ablation bench
measures its cost/benefit.
"""

import pytest

from repro.core.registry import get_strategy
from repro.network.machine import GCEL, ZERO_COST
from repro.network.mesh import Mesh2D
from repro.runtime.launcher import Runtime

from test_access_tree import Driver, component_is_connected, top_is_unique_shallowest


def make_driver(threshold, **kw):
    mesh = Mesh2D(4, 4)
    strategy = get_strategy("4-ary", mesh, seed=1, remap_threshold=threshold)
    rt = Runtime(mesh, strategy, ZERO_COST, seed=1, **kw)
    d = Driver.__new__(Driver)
    d.mesh = mesh
    d.strategy = strategy
    d.rt = rt
    d.completions = []
    rt.resume = lambda p, t, v: d.completions.append((p, t, v))
    return d


class TestRemapping:
    def test_disabled_by_default(self):
        d = Driver()
        var = d.create("x", 64, creator=0, value=1)
        for _ in range(50):
            d.read(15, var)
            d.write(0, var, 1)
        assert d.strategy.remaps == 0

    def test_hot_node_gets_remapped(self):
        d = make_driver(threshold=5)
        var = d.create("x", 64, creator=0, value=0)
        # Hammer the same remote path: the shared interior nodes heat up.
        for i in range(40):
            d.read(15, var)
            d.write(0, var, i)
        assert d.strategy.remaps > 0

    def test_remapped_host_stays_in_submesh(self):
        d = make_driver(threshold=3)
        var = d.create("x", 64, creator=0, value=0)
        for i in range(30):
            d.read(15, var)
            d.write(0, var, i)
        tree = d.strategy.tree
        for node in range(len(tree.nodes)):
            host = d.strategy._host(var.vid, node)
            tn = tree.nodes[node]
            r, c = d.mesh.coord(host)
            assert tn.row0 <= r < tn.row0 + tn.rows
            assert tn.col0 <= c < tn.col0 + tn.cols

    def test_invariants_hold_with_remapping(self):
        d = make_driver(threshold=2)
        variables = [d.create(f"v{i}", 64, creator=i, value=i) for i in range(3)]
        for i in range(30):
            p = (i * 7) % 16
            vi = i % 3
            if i % 3 == 0:
                d.write(p, variables[vi], i)
            else:
                d.read(p, variables[vi])
            for var in variables:
                assert component_is_connected(d.strategy, var)
                assert top_is_unique_shallowest(d.strategy, var)

    def test_values_stay_correct_with_remapping(self):
        d = make_driver(threshold=2)
        var = d.create("x", 64, creator=0, value=0)
        for i in range(25):
            d.write(i % 16, var, i)
            val, _ = d.read((i + 5) % 16, var)
            assert val == i

    def test_end_to_end_application_with_remapping(self):
        from repro.apps import matmul

        mesh = Mesh2D(4, 4)
        strat = get_strategy("4-ary", mesh, remap_threshold=3)
        res = matmul.run_diva(mesh, strat, block_entries=16)
        assert res.extra["verified"]
        assert strat.remaps > 0

    def test_remap_migrates_copy_with_traffic(self):
        d = make_driver(threshold=3)
        # Use GCEL so migration legs show in stats.
        d.rt.sim.machine = GCEL
        var = d.create("x", 256, creator=0, value=0)
        before = d.rt.sim.stats.data_msgs
        for i in range(30):
            d.read(15, var)
            d.write(0, var, i)
        # Migration of copy-holding nodes sends data messages beyond the
        # plain protocol's (request+reply / invalidation) pattern.
        assert d.strategy.remaps > 0
