"""Access tree embedding tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import build_tree
from repro.core.embedding import ModifiedEmbedding, RandomEmbedding, make_embedding
from repro.network.mesh import Mesh2D
from repro.network.routing import path_length

mesh_shapes = st.tuples(
    st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8)
)


def in_submesh(mesh, node, host) -> bool:
    r, c = mesh.coord(host)
    return node.row0 <= r < node.row0 + node.rows and node.col0 <= c < node.col0 + node.cols


class TestFactory:
    def test_make(self):
        tree = build_tree(Mesh2D(4, 4))
        assert isinstance(make_embedding("modified", tree), ModifiedEmbedding)
        assert isinstance(make_embedding("random", tree), RandomEmbedding)
        with pytest.raises(ValueError):
            make_embedding("weird", tree)


@pytest.mark.parametrize("kind", ["random", "modified"])
class TestBothEmbeddings:
    @given(shape=mesh_shapes, vid=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_host_inside_submesh(self, kind, shape, vid):
        """Every tree node is hosted by a processor of its own submesh --
        the defining property of the embedding."""
        mesh = Mesh2D(*shape)
        tree = build_tree(mesh, stride=2)
        emb = make_embedding(kind, tree, seed=1)
        for node in tree.nodes:
            host = emb.host(vid, node.idx)
            assert in_submesh(mesh, node, host)

    def test_leaf_hosts_itself(self, kind):
        mesh = Mesh2D(4, 4)
        tree = build_tree(mesh, stride=1)
        emb = make_embedding(kind, tree, seed=3)
        for p in range(16):
            assert emb.host(7, tree.leaf_of_proc[p]) == p

    def test_deterministic_per_seed_and_vid(self, kind):
        mesh = Mesh2D(4, 4)
        tree = build_tree(mesh, stride=2)
        a = make_embedding(kind, tree, seed=5)
        b = make_embedding(kind, tree, seed=5)
        for node in tree.nodes:
            assert a.host(3, node.idx) == b.host(3, node.idx)

    def test_different_vars_embed_differently(self, kind):
        mesh = Mesh2D(8, 8)
        tree = build_tree(mesh, stride=2)
        emb = make_embedding(kind, tree, seed=5)
        roots = {emb.host(v, tree.root) for v in range(40)}
        assert len(roots) > 5  # randomized across variables

    def test_forget_clears_cache(self, kind):
        mesh = Mesh2D(4, 4)
        tree = build_tree(mesh, stride=2)
        emb = make_embedding(kind, tree, seed=5)
        emb.host(3, tree.root)
        assert 3 in emb._cache
        emb.forget(3)
        assert 3 not in emb._cache


class TestModifiedRule:
    def test_child_coordinates_follow_parent_mod_rule(self):
        """The paper's rule: child's submesh-local coordinates are the
        parent's submesh-local coordinates mod the child's side lengths."""
        mesh = Mesh2D(8, 8)
        tree = build_tree(mesh, stride=1)
        emb = ModifiedEmbedding(tree, seed=9)
        for vid in range(5):
            for node in tree.nodes:
                if node.parent is None:
                    continue
                parent = tree.nodes[node.parent]
                pr, pc = mesh.coord(emb.host(vid, parent.idx))
                li, lj = pr - parent.row0, pc - parent.col0
                hr, hc = mesh.coord(emb.host(vid, node.idx))
                assert hr == node.row0 + (li % node.rows)
                assert hc == node.col0 + (lj % node.cols)

    def test_modified_embedding_shortens_tree_edges(self):
        """The motivation for the modified embedding: smaller expected
        distance between neighbouring tree nodes than random placement."""
        mesh = Mesh2D(16, 16)
        tree = build_tree(mesh, stride=2)

        def total_edge_distance(emb, vids):
            total = 0
            for vid in vids:
                for node in tree.nodes:
                    if node.parent is not None:
                        total += path_length(
                            mesh, emb.host(vid, node.parent), emb.host(vid, node.idx)
                        )
            return total

        vids = range(20)
        mod = total_edge_distance(ModifiedEmbedding(tree, seed=4), vids)
        rnd = total_edge_distance(RandomEmbedding(tree, seed=4), vids)
        assert mod < rnd

    def test_many_parent_child_pairs_colocated(self):
        """Under the modified rule, a parent in the child's quadrant hosts
        the child on the same processor (zero-distance edge)."""
        mesh = Mesh2D(8, 8)
        tree = build_tree(mesh, stride=2)
        emb = ModifiedEmbedding(tree, seed=2)
        colocated = 0
        edges = 0
        for vid in range(10):
            for node in tree.nodes:
                if node.parent is not None:
                    edges += 1
                    if emb.host(vid, node.idx) == emb.host(vid, node.parent):
                        colocated += 1
        assert colocated > edges // 10
