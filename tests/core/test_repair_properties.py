"""Repair-hook properties: the invariants every self-repairing strategy
must keep under the failure axis (see repro.network.failures).

The properties from the fault-injection design:

* no message leg ever traverses a down link;
* the last surviving copy of a variable is never dropped -- not by
  repair, not by LRU eviction under bounded memory;
* immediately after re-homing, directory/home lookups resolve to live
  nodes and the dead processor hosts nothing;
* local-memory accounting (``used_bytes == sum(entries)``) survives
  churn, bounded or unbounded.

Failure model nuance the assertions respect: node death is fail-stop for
the *data-management roles* (directory, home, copies, embedding hosts) --
the processor's program keeps computing, so a dead processor may later
re-acquire a cached copy or even ownership by issuing requests.  The
liveness invariants therefore hold *at repair time* (checked by wrapping
``on_node_down``), not necessarily at the end of the run.
"""

import pytest

from repro.core.access_tree import AccessTreeStrategy
from repro.core.fixed_home import HOME, FixedHomeStrategy
from repro.core.migratory import MigratoryStrategy
from repro.network.topology import make_topology
from repro.workloads import get_workload

#: Every self-repairing family: the ownership scheme, its dynamic-
#: replication subclass, single-copy migration, and two access trees.
STRATEGIES = ["fixed-home", "dynrep", "migratory", "4-ary", "2-4-ary"]

#: Permanent churn (no revive): 20% of a 16-node mesh dies mid-run.
CHURN = "churn:nodes=0.2:seed=5:horizon=0.01"


def run_zipf(strategy, failures, capacity_bytes=None, seed=3):
    wl = get_workload("zipf")
    res = wl.run(
        make_topology("mesh", 4), strategy, seed=seed,
        params={"n_vars": 12, "ops": 24, "alpha": 0.9, "read_frac": 0.8,
                "payload": 64},
        failures=failures, capacity_bytes=capacity_bytes,
    )
    return res, res.extra["runtime"]


def copy_sets(strategy_obj):
    """``vid -> non-empty set of copy locations`` for any family (tree
    nodes for access trees, processors for the directory families)."""
    if isinstance(strategy_obj, AccessTreeStrategy):
        return {vid: set(cs.nodes) for vid, cs in strategy_obj._copies.items()}
    return {
        vid: (set(st.copies) if hasattr(st, "copies") else {st.owner})
        for vid, st in strategy_obj._states.items()
    }


# --------------------------------------------------------------- validators
# Each returns a list of violation strings, checked right after the
# strategy's own repair ran (`proc` just died, `down` is the full set).

def _validate_fixed_home(strat, proc, down):
    errs = []
    for vid, st in strat._states.items():
        if st.home in down:
            errs.append(f"vid {vid}: home {st.home} is dead")
        if st.owner == proc:
            errs.append(f"vid {vid}: dead proc still owner")
        if proc in st.copies:
            errs.append(f"vid {vid}: dead proc still in copy set")
        if not st.copies:
            errs.append(f"vid {vid}: copy set emptied by repair")
        holder = st.home if st.owner == HOME else st.owner
        if holder not in st.copies:
            errs.append(f"vid {vid}: authoritative holder {holder} has no copy")
    if strat._track_mem and len(strat.memory[proc]) != 0:
        errs.append(f"dead p{proc} still holds memory entries")
    return errs


def _validate_migratory(strat, proc, down):
    errs = []
    for vid, st in strat._states.items():
        if st.directory in down:
            errs.append(f"vid {vid}: directory {st.directory} is dead")
        if st.owner == proc:
            errs.append(f"vid {vid}: dead proc still owns the copy")
    if strat._track_mem and len(strat.memory[proc]) != 0:
        errs.append(f"dead p{proc} still holds memory entries")
    return errs


def _validate_tree(strat, proc, down):
    errs = []
    tree, emb = strat.tree, strat.embedding
    for vid, cs in strat._copies.items():
        if not cs.nodes:
            errs.append(f"vid {vid}: copy set emptied by repair")
        for node in cs.nodes:
            if tree.nodes[node].size == 1:
                continue  # leaves are pinned to their processor
            host = emb.host(vid, node)
            if host in down:
                errs.append(f"vid {vid}: tree node {node} hosted on dead {host}")
    return errs


_VALIDATORS = [
    (FixedHomeStrategy, _validate_fixed_home),  # dynrep inherits
    (MigratoryStrategy, _validate_migratory),
    (AccessTreeStrategy, _validate_tree),
]


@pytest.fixture
def repair_violations(monkeypatch):
    """Wrap every family's ``on_node_down`` so the matching invariant
    validator runs immediately after each repair; yields the collected
    violations."""
    errors = []
    for cls, validate in _VALIDATORS:
        orig = cls.on_node_down

        def wrapped(self, proc, t, down=frozenset(), _orig=orig, _val=validate):
            vids = list(_orig(self, proc, t, down=down))
            errors.extend(_val(self, proc, down))
            return vids

        monkeypatch.setattr(cls, "on_node_down", wrapped)
    return errors


class TestNoTrafficOnDownLinks:
    """A leg must never traverse a down link: permanently-down links stay
    silent for the whole run, and every route the failure view serves
    avoids the current down set."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_permanently_down_link_is_silent(self, strategy):
        link = 5
        res, rt = run_zipf(strategy, f"linkdown:link={link}:at=0")
        assert res.failure_events == 1
        stats = rt.sim.stats
        assert stats.link_msgs[link] == 0
        assert stats.link_bytes[link] == 0
        # The run still made progress around the hole.
        assert stats.total_msgs > 0

    @pytest.mark.parametrize(
        "failures", [CHURN, "linkflap:rate=0.2:seed=1:horizon=0.01:down=0"]
    )
    def test_cached_routes_avoid_the_down_set(self, failures):
        """The engine routes every leg through the view's cache; after
        the run, no cached route crosses a down link (node death downs
        all incident links via ``link_usable``)."""
        _, rt = run_zipf("fixed-home", failures)
        view = rt._failview
        assert view.down_links or view.down_nodes
        assert view.route_cache  # post-epoch lookups happened
        for route in view.route_cache.values():
            for link in route:
                assert view.link_usable(link)


class TestLastCopySurvivesRepair:
    """Churn with bounded memory: repair moves copies, eviction drops
    cached ones -- but the last copy of every variable must survive
    both, and the authoritative holder keeps its copy."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("capacity_bytes", [None, 200.0])
    def test_every_variable_keeps_a_copy(self, strategy, capacity_bytes):
        res, rt = run_zipf(strategy, CHURN, capacity_bytes=capacity_bytes)
        assert res.failure_events > 0
        assert rt._failview.down_nodes  # churn actually killed nodes
        for vid, copies in copy_sets(rt.strategy).items():
            assert copies, f"vid {vid}: no copy survived under {strategy}"

    def test_bounded_run_actually_evicted(self):
        """The bounded leg of the property is vacuous unless the capacity
        really forces replacement."""
        res, _ = run_zipf("fixed-home", CHURN, capacity_bytes=200.0)
        assert res.evictions > 0

    @pytest.mark.parametrize("strategy", ["fixed-home", "dynrep"])
    def test_authoritative_holder_keeps_its_copy(self, strategy):
        """The ownership-scheme invariant survives churn end to end."""
        _, rt = run_zipf(strategy, CHURN, capacity_bytes=200.0)
        for vid, st in rt.strategy._states.items():
            holder = st.home if st.owner == HOME else st.owner
            assert holder in st.copies, f"vid {vid}: holder lost its copy"


class TestLookupsResolveLiveAtRepairTime:
    """Immediately after ``on_node_down`` repaired a death, every
    directory / home lookup resolves to a live node and the dead
    processor hosts nothing (the program running there may re-acquire
    copies later -- that is the fail-stop-data-roles model, not a
    repair bug)."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("capacity_bytes", [None, 200.0])
    def test_repair_leaves_consistent_state(self, repair_violations, strategy,
                                            capacity_bytes):
        res, _ = run_zipf(strategy, CHURN, capacity_bytes=capacity_bytes)
        assert res.failure_events > 0
        assert res.repairs > 0  # the hooks actually repaired variables
        assert repair_violations == []

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_repair_under_revived_churn(self, repair_violations, strategy):
        """Revived nodes return empty (state lost at death stays where
        repair put it); the invariants must hold at every death even
        when earlier deaths were revived in between."""
        res, _ = run_zipf(
            strategy, "churn:nodes=0.2:seed=9:horizon=0.01:revive=0.4"
        )
        assert res.failure_events > 0
        assert repair_violations == []


class TestMemoryAccountingUnderChurn:
    """``used_bytes`` must equal the sum of the entries on every
    processor after repair moved copies around -- double-remove or
    missed-insert bugs in the repair hooks show up here.  (Unbounded
    runs skip LRU bookkeeping entirely; the bounded leg carries the
    weight, the unbounded leg pins the fast path staying empty.)"""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("capacity_bytes", [None, 200.0])
    def test_used_bytes_matches_entries(self, strategy, capacity_bytes):
        res, rt = run_zipf(strategy, CHURN, capacity_bytes=capacity_bytes)
        assert res.failure_events > 0
        for proc, mem in enumerate(rt.memory.mems):
            total = sum(mem._entries.values())
            assert mem.used_bytes == total, (
                f"p{proc}: used_bytes={mem.used_bytes} != entries={total}"
            )
            assert mem.used_bytes >= 0
