"""AdaptiveStrategy protocol tests: decayed-score promotion, lazy
demotion of cold holders, and score persistence across writes (the edge
over dynrep under a drifting hotspot)."""

import pytest

from repro.core.adaptive import AdaptiveStrategy
from repro.core.dynrep import DynRepStrategy
from repro.network.machine import ZERO_COST
from repro.network.mesh import Mesh2D
from repro.core.registry import parse_strategy_spec
from repro.runtime.launcher import Runtime


def drive(mesh, program, seed=0, **kw):
    strat = AdaptiveStrategy(mesh, seed=seed, **kw)
    rt = Runtime(mesh, strat, ZERO_COST, seed=seed)
    res = rt.run(program)
    return strat, rt, res


class TestConstruction:
    @pytest.mark.parametrize("kw,msg", [
        (dict(halflife=0), "halflife must be > 0"),
        (dict(halflife=-5), "halflife must be > 0"),
        (dict(promote=0), "promote must be > 0"),
        (dict(demote=-0.1), "demote must satisfy"),
        (dict(promote=2, demote=2), "demote must satisfy"),
    ])
    def test_invalid_params_rejected(self, kw, msg):
        with pytest.raises(ValueError, match=msg):
            AdaptiveStrategy(Mesh2D(2, 2), **kw)

    def test_name_is_a_parseable_spec(self):
        strat = AdaptiveStrategy(Mesh2D(2, 2), halflife=20, promote=2)
        assert strat.name == "adaptive:halflife=20:promote=2"
        family, params = parse_strategy_spec(strat.name)
        assert family.name == "adaptive"
        assert params["halflife"] == 20.0 and params["promote"] == 2.0


class TestPromotion:
    def test_replica_earned_at_promote_score(self):
        """With no competing accesses the score is the reader's own read
        count: read ``promote`` times -> replicate, then hit."""
        mesh = Mesh2D(2, 2)
        handles = {}

        def program(env):
            if env.rank == 0:
                handles["x"] = env.create("x", 64, value=9)
            yield from env.barrier()
            if env.rank == 3:
                for _ in range(4):
                    v = yield from env.read(handles["x"])
                    assert v == 9
            yield from env.barrier()

        strat, rt, _ = drive(mesh, program, halflife=1000.0, promote=2.5)
        var = handles["x"]
        # reads 1, 2 forwarded (score ~1, ~2); read 3 crosses 2.5 and
        # replicates; read 4 hits
        assert strat.misses == 3 and strat.hits == 1
        assert 3 in strat.copy_procs(var)
        assert strat.replications == 1

    def test_scores_survive_writes_unlike_dynrep(self):
        """After a write invalidation the hot reader re-replicates on its
        FIRST miss; dynrep at an equivalent threshold starts from zero.
        This is the adaptation edge the xadapt sweep measures."""
        mesh = Mesh2D(2, 2)

        def make_program(handles):
            def program(env):
                if env.rank == 0:
                    handles["x"] = env.create("x", 64, value=0)
                yield from env.barrier()
                if env.rank == 3:  # earn the replica
                    for _ in range(3):
                        yield from env.read(handles["x"])
                yield from env.barrier()
                if env.rank == 1:  # invalidate it
                    yield from env.write(handles["x"], 1)
                yield from env.barrier()
                if env.rank == 3:  # one miss ...
                    yield from env.read(handles["x"])
                yield from env.barrier()
                if env.rank == 3:  # ... must already hit again
                    yield from env.read(handles["x"])
                yield from env.barrier()
            return program

        handles = {}
        strat, rt, _ = drive(mesh, make_program(handles),
                             halflife=1000.0, promote=2.5)
        assert 3 in strat.copy_procs(handles["x"])
        assert strat.replications == 2  # initial earn + instant re-earn
        assert strat.hits == 1  # the final read

        handles = {}
        dyn = DynRepStrategy(mesh, seed=0, threshold=3)
        Runtime(mesh, dyn, ZERO_COST, seed=0).run(make_program(handles))
        # Same access pattern: dynrep's counters were reset by the write,
        # so the two post-write reads both miss and no replica exists.
        assert 3 not in dyn.copy_procs(handles["x"])
        assert dyn.hits == 0


class TestDemotion:
    def test_cold_holder_dropped_on_read_miss(self):
        """A holder that stops reading decays below ``demote`` and is
        dropped by a later miss of another processor; the authoritative
        copy is never demoted."""
        mesh = Mesh2D(2, 2)
        handles = {}

        def program(env):
            if env.rank == 0:
                handles["x"] = env.create("x", 64, value=9)
                handles["y"] = env.create("y", 64, value=7)
            yield from env.barrier()
            if env.rank == 3:  # earn a replica of x (scores: 2 reads)
                yield from env.read(handles["x"])
                yield from env.read(handles["x"])
            yield from env.barrier()
            if env.rank == 2:  # many accesses of x: rank 3's score decays
                for _ in range(40):
                    yield from env.read(handles["x"])
            yield from env.barrier()
            yield from env.barrier()

        strat, rt, _ = drive(mesh, program, halflife=4.0, promote=2.0, demote=0.5)
        var = handles["x"]
        assert 3 not in strat.copy_procs(var)  # demoted
        assert strat.demotions >= 1
        # The owner's authoritative copy survives every demotion pass.
        owner = strat.owner_of(var)
        assert owner in strat.copy_procs(var) or owner == -1

    def test_counters_reset(self):
        mesh = Mesh2D(2, 2)
        handles = {}

        def program(env):
            if env.rank == 0:
                handles["x"] = env.create("x", 64, value=9)
            yield from env.barrier()
            if env.rank == 3:
                yield from env.read(handles["x"])
            yield from env.barrier()

        strat, rt, _ = drive(mesh, program, promote=1.0)
        assert strat.replications == 1
        strat.reset_counters()
        assert strat.replications == 0 and strat.demotions == 0
        assert strat.hits == 0 and strat.misses == 0
