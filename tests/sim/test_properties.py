"""Simulator-wide property tests: causality and accounting conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.machine import GCEL
from repro.network.mesh import Mesh2D
from repro.network.routing import route_links
from repro.sim.engine import Simulator
from repro.sim.flows import chain

legs_strategy = st.lists(
    st.tuples(
        st.integers(0, 15),  # src
        st.integers(0, 15),  # dst
        st.integers(0, 4096),  # payload
        st.booleans(),  # is_data
    ),
    min_size=1,
    max_size=30,
)


@given(legs_strategy)
@settings(max_examples=50, deadline=None)
def test_send_leg_causality(legs):
    """Every delivery completes at or after its ready time, and resource
    availability times never move backwards."""
    sim = Simulator(Mesh2D(4, 4), GCEL)
    ready = 0.0
    for src, dst, payload, is_data in legs:
        before_nic = list(sim.nic_free)
        before_links = list(sim.link_free)
        done = sim.send_leg(src, dst, payload, ready, is_data)
        assert done >= ready
        assert all(a >= b for a, b in zip(sim.nic_free, before_nic))
        assert all(a >= b for a, b in zip(sim.link_free, before_links))
        ready = done / 2  # next leg may be ready earlier: still must hold


@given(legs_strategy)
@settings(max_examples=40, deadline=None)
def test_traffic_conservation(legs):
    """Total per-link bytes equal the sum over messages of wire size times
    path length; message counts add up."""
    mesh = Mesh2D(4, 4)
    sim = Simulator(mesh, GCEL)
    expect_bytes = 0.0
    expect_msgs = 0
    for src, dst, payload, is_data in legs:
        sim.send_leg(src, dst, payload, 0.0, is_data)
        path = route_links(mesh, src, dst)
        wire = payload + GCEL.header_bytes if is_data else GCEL.ctrl_bytes
        expect_bytes += wire * len(path)
        expect_msgs += len(path)
    assert sim.stats.total_bytes == pytest.approx(expect_bytes)
    assert sim.stats.total_link_msgs == expect_msgs
    assert sim.stats.total_msgs == len(legs)


@given(legs_strategy)
@settings(max_examples=30, deadline=None)
def test_chain_completion_after_all_legs(legs):
    """A chain's completion time dominates every leg's earliest possible
    time and the chain records exactly its legs."""
    mesh = Mesh2D(4, 4)
    sim = Simulator(mesh, GCEL)
    done = []
    chain(sim, legs, 0.0, done.append)
    sim.run()
    assert len(done) == 1
    assert done[0] >= 0.0
    assert sim.stats.total_msgs == len(legs)
    # Lower bound: sum of pure NIC overheads along the chain (no link or
    # queueing term can make it faster).
    lower = 0.0
    for src, dst, payload, is_data in legs:
        if src == dst:
            lower += GCEL.local_overhead
        else:
            wire = payload + GCEL.header_bytes if is_data else GCEL.ctrl_bytes
            lower += 2 * GCEL.nic_overhead(wire) + wire / GCEL.link_bandwidth
    assert done[0] >= lower * (1 - 1e-9)


def test_heatmap_of_real_run():
    """The heatmap renders for real application traffic and highlights at
    least one saturated wire."""
    from repro.apps import matmul
    from repro.core.registry import get_strategy

    mesh = Mesh2D(4, 4)
    res = matmul.run_diva(mesh, get_strategy("fixed-home", mesh), 64)
    rt = res.extra["runtime"]
    out = rt.sim.stats.render_heatmap()
    assert "100" in out
    assert out.count("+") == 16
