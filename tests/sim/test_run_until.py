"""Horizon-bounded draining: ``Simulator.run(until=...)``.

The serving layer's bounded run-ahead rests on one engine property:
draining the heap in horizon slices executes exactly the events a single
unbounded drain would, in exactly the same order, on both engines (the
popped-then-deferred item is pushed back with its original (time, seq)
key, so nothing is reordered).
"""

from repro.network.machine import GCEL
from repro.network.mesh import Mesh2D
from repro.sim.engine import Simulator


def sim():
    return Simulator(Mesh2D(4, 4), GCEL)


class TestHorizon:
    def test_only_events_at_or_before_horizon_fire(self):
        s = sim()
        fired = []
        for t in (1.0, 2.0, 3.0):
            s.schedule(t, fired.append, t)
        s.run(until=1.5)
        assert fired == [1.0]
        s.run(until=2.0)  # inclusive: an event AT the horizon fires
        assert fired == [1.0, 2.0]
        s.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_horizon_run_is_resumable_in_exact_order(self):
        def drive(horizons):
            s = sim()
            fired = []
            # Two events at the identical time: sequence order must hold
            # across the slice boundary.
            s.schedule(1.0, fired.append, "a")
            s.schedule(1.0, fired.append, "b")
            s.schedule(2.0, fired.append, "c")
            for h in horizons:
                s.run(until=h)
            s.run()
            return fired

        assert drive([]) == drive([0.5]) == drive([1.0, 1.5]) == ["a", "b", "c"]

    def test_empty_horizon_slice_is_a_no_op(self):
        s = sim()
        fired = []
        s.schedule(5.0, fired.append, 1)
        for _ in range(3):
            s.run(until=1.0)
        assert fired == [] and s.now <= 1.0
        s.run()
        assert fired == [1]

    def test_traffic_identical_under_slicing(self):
        """A message chain timed in horizon slices produces the same
        completion times and link statistics as one drain."""

        def drive(slices):
            s = sim()
            done = []
            for i in range(12):
                done.append(s.send_leg(i % 16, (i * 5 + 3) % 16, 200,
                                       ready=i * 1e-5, is_data=True))
            if slices:
                t = 0.0
                while s._heap or (s._h is not None):
                    t += 2e-5
                    s.run(until=t)
                    if t > 1.0:
                        break
            s.run()
            return done, s.stats.total_msgs, s.stats.total_bytes

        assert drive(True) == drive(False)
