"""The C kernel's native routing must mirror Python's closed forms.

Above ``DENSE_NODE_LIMIT`` the kernel stops caching routes and computes
each one in C (``sim_set_topology`` with ``cache=0``); below it computed
routes are interned in the kernel's hash.  Either way the link ids must
be bit-identical to ``Topology.compute_route`` -- these tests drive the
kernel's debug surface (``sim_compute_route`` / ``sim_route_scratch``)
directly, then pin whole-simulation equivalence across the engines at a
beyond-the-limit machine size.
"""

import random

import pytest

from repro.network.machine import GCEL
from repro.network.mesh import Mesh2D
from repro.network.routing import DENSE_NODE_LIMIT
from repro.network.topology import Hypercube
from repro.network.torus import Torus2D
from repro.sim import _ckern
from repro.sim.engine import Simulator

kernel_only = pytest.mark.skipif(
    _ckern.load_kernel() is None,
    reason="C kernel unavailable; only the pure engine runs here",
)

# Rectangles, degenerate shapes, and sizes on both sides of the limit.
TOPOLOGIES = [
    Mesh2D(3, 7),
    Mesh2D(1, 9),
    Mesh2D(8, 8),
    Mesh2D(128, 64),     # 8192 > DENSE_NODE_LIMIT: uncached C routing
    Torus2D(4, 4),
    Torus2D(3, 5),
    Torus2D(64, 128),
    Hypercube(1),
    Hypercube(4),
    Hypercube(13),
]


def kernel_route(sim, src, dst):
    n = sim._lib.sim_compute_route(sim._h, src, dst)
    assert n >= 0, "kernel has no native topology bound"
    return tuple(sim._lib.sim_route_scratch(sim._h)[0:n])


@kernel_only
class TestKernelRoutesMatchPython:
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.label)
    def test_random_pairs_identical(self, topo):
        sim = Simulator(topo, GCEL)
        assert sim._h is not None
        rng = random.Random(11)
        n = topo.n_nodes
        pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(400)]
        pairs += [(0, 0), (0, n - 1), (n - 1, 0), (n - 1, n - 1)]
        for src, dst in pairs:
            route = kernel_route(sim, src, dst)
            assert route == topo.compute_route(src, dst)
            assert len(route) == topo.distance(src, dst)

    def test_small_machines_exhaustively(self):
        for topo in (Mesh2D(3, 4), Torus2D(3, 3), Hypercube(3)):
            sim = Simulator(topo, GCEL)
            for src in range(topo.n_nodes):
                for dst in range(topo.n_nodes):
                    assert kernel_route(sim, src, dst) == topo.compute_route(src, dst)

    def test_probe_is_side_effect_free_above_the_limit(self):
        """Uncached mode recomputes into scratch; computing many routes
        must leave no per-route residue in the Python router."""
        topo = Torus2D(64, 128)
        sim = Simulator(topo, GCEL)
        for dst in range(0, topo.n_nodes, 997):
            kernel_route(sim, 0, dst)
        assert sim._routes == {}


@kernel_only
class TestArenaGrowth:
    def test_cached_native_routes_survive_arena_reallocs(self, monkeypatch):
        """Storing thousands of distinct computed routes grows the
        kernel's arena through several reallocs; every leg must still
        read its just-stored route (regression: the store's realloc once
        left the leg reading through the pre-realloc arena pointer)."""
        topo = Mesh2D(16, 16)

        def drive():
            sim = Simulator(topo, GCEL)
            t = 0.0
            for src in range(topo.n_nodes):
                for dst in range(0, topo.n_nodes, 7):
                    t = sim.send_leg(src, dst, 64, ready=t, is_data=True)
            return t, sim.stats.snapshot()

        kernel = drive()
        monkeypatch.setattr(Simulator, "force_pure", True)
        assert kernel == drive()


@kernel_only
class TestEngineEquivalenceAboveTheLimit:
    def test_kernel_matches_pure_python_at_8192_nodes(self, monkeypatch):
        """One small zipf cell on an 8192-node machine (algebraic router +
        sparse stats active) must produce field-identical rows under the C
        kernel and the pure-Python loop."""
        from repro.analysis.experiments import xscale_cell

        assert Hypercube(13).n_nodes > DENSE_NODE_LIMIT
        cell = dict(nodes=8192, topology="hypercube", strategy="2-4-ary",
                    ops=2, n_vars=8)
        kernel_rows = xscale_cell(**cell)
        monkeypatch.setattr(Simulator, "force_pure", True)
        pure_rows = xscale_cell(**cell)
        assert kernel_rows == pure_rows  # exact equality, field by field
