"""Event engine and message-leg timing tests."""

import pytest

from repro.network.machine import GCEL, ZERO_COST, MachineModel
from repro.network.mesh import Mesh2D
from repro.sim.engine import Simulator


def sim(machine=GCEL, rows=4, cols=4):
    return Simulator(Mesh2D(rows, cols), machine)


class TestEventHeap:
    def test_events_run_in_time_order(self):
        s = sim()
        order = []
        s.schedule(2.0, order.append, "b")
        s.schedule(1.0, order.append, "a")
        s.schedule(3.0, order.append, "c")
        s.run()
        assert order == ["a", "b", "c"]
        assert s.now == 3.0

    def test_ties_broken_fifo(self):
        s = sim()
        order = []
        for i in range(5):
            s.schedule(1.0, order.append, i)
        s.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_into_past_rejected(self):
        s = sim()
        s.schedule(5.0, lambda: s.schedule(1.0, lambda: None))
        with pytest.raises(ValueError):
            s.run()

    def test_nested_scheduling(self):
        s = sim()
        seen = []

        def outer():
            seen.append(("outer", s.now))
            s.schedule(s.now + 1.0, inner)

        def inner():
            seen.append(("inner", s.now))

        s.schedule(1.0, outer)
        s.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestSendLeg:
    def test_local_leg_costs_local_overhead(self):
        s = sim()
        done = s.send_leg(3, 3, 1000, ready=0.0, is_data=True)
        assert done == pytest.approx(GCEL.local_overhead)
        assert s.stats.local_msgs == 1
        assert s.stats.congestion_bytes == 0

    def test_remote_leg_time_components(self):
        s = sim()
        payload = 1000
        wire = payload + GCEL.header_bytes
        done = s.send_leg(0, 1, payload, ready=0.0, is_data=True)
        oh = GCEL.nic_overhead(wire)
        expected = oh + wire / GCEL.link_bandwidth + GCEL.hop_latency + oh
        assert done == pytest.approx(expected)

    def test_ctrl_leg_uses_ctrl_size(self):
        s = sim()
        s.send_leg(0, 1, 12345, ready=0.0, is_data=False)  # payload ignored
        assert s.stats.link_bytes[
            [l for l, a, b in s.topology.iter_links() if (a, b) == (0, 1)][0]
        ] == GCEL.ctrl_bytes

    def test_nic_serializes_sends(self):
        s = sim()
        t1 = s.send_leg(0, 1, 1000, ready=0.0, is_data=True)
        t2 = s.send_leg(0, 2, 1000, ready=0.0, is_data=True)
        # The second message waits for the sender's NIC.
        assert t2 > t1

    def test_link_serializes_messages(self):
        zero_nic = GCEL.with_(nic_fixed_overhead=0.0, nic_byte_overhead=0.0, hop_latency=0.0)
        s = sim(zero_nic)
        wire = 1000 + zero_nic.header_bytes
        t1 = s.send_leg(0, 3, 1000, ready=0.0, is_data=True)
        t2 = s.send_leg(1, 3, 1000, ready=0.0, is_data=True)  # shares link 1->2->3
        assert t1 == pytest.approx(3 * 0 + wire / 1e6)
        assert t2 == pytest.approx(2 * wire / 1e6)

    def test_disjoint_paths_parallel(self):
        zero_nic = GCEL.with_(nic_fixed_overhead=0.0, nic_byte_overhead=0.0, hop_latency=0.0)
        s = sim(zero_nic)
        t1 = s.send_leg(0, 1, 1000, ready=0.0, is_data=True)
        t2 = s.send_leg(4, 5, 1000, ready=0.0, is_data=True)
        assert t1 == pytest.approx(t2)

    def test_ready_time_respected(self):
        s = sim(ZERO_COST)
        done = s.send_leg(0, 1, 10, ready=7.5, is_data=True)
        assert done == pytest.approx(7.5)

    def test_zero_cost_machine_instant(self):
        s = sim(ZERO_COST)
        assert s.send_leg(0, 15, 10**9, ready=0.0, is_data=True) == 0.0

    def test_traffic_recorded_on_every_path_link(self):
        s = sim(ZERO_COST)
        s.send_leg(0, 15, 100, ready=0.0, is_data=True)
        # path (0,0)->(3,3): 6 links
        assert sum(1 for b in s.stats.link_bytes if b > 0) == 6

    def test_count_false_times_without_recording(self):
        s = sim()
        s.send_leg(0, 1, 100, ready=0.0, is_data=True, count=False)
        assert s.stats.total_msgs == 0

    def test_count_false_is_side_effect_free(self):
        """Regression: a hypothetical leg must not reserve resources --
        historically it mutated nic_free/link_free, so 'timing' a leg
        perturbed every later message."""
        s = sim()
        nic_before = list(s.nic_free)
        links_before = list(s.link_free)
        hypothetical = s.send_leg(0, 5, 1000, ready=0.0, is_data=True, count=False)
        assert list(s.nic_free) == nic_before
        assert list(s.link_free) == links_before
        assert s.stats.total_msgs == 0
        # Same leg timed for real on the untouched simulator: identical time.
        real = s.send_leg(0, 5, 1000, ready=0.0, is_data=True)
        assert real == pytest.approx(hypothetical)
        assert s.stats.total_msgs == 1

    def test_count_false_repeated_is_idempotent(self):
        s = sim()
        t1 = s.send_leg(0, 1, 500, ready=0.0, is_data=True, count=False)
        t2 = s.send_leg(0, 1, 500, ready=0.0, is_data=True, count=False)
        assert t1 == t2  # no hidden serialization between hypothetical legs


class TestMeshAlias:
    def test_mesh_alias_removed(self):
        """``Simulator.mesh`` was deprecated in the topology-generic
        release and removed on schedule; ``topology`` is the surface."""
        s = sim()
        with pytest.raises(AttributeError):
            s.mesh  # noqa: B018

    def test_topology_attribute_is_the_surface(self):
        s = sim()
        assert s.topology.n_nodes == 16


class TestEngineEquivalence:
    """The C kernel and the pure-Python loop must be bit-identical."""

    @staticmethod
    def _rows():
        from repro.analysis.experiments import fig2_cell, synthetic_cell

        rows = synthetic_cell(
            workload="zipf", strategy="4-ary", topology="mesh", side=4,
            params={"n_vars": 16, "ops": 24, "alpha": 0.8, "read_frac": 0.8},
            seed=0,
        )
        rows += fig2_cell("fixed-home", side=4, block_entries=64)
        rows += fig2_cell("4-ary", side=4, block_entries=64)
        return rows

    def test_kernel_matches_pure_python_exactly(self, monkeypatch):
        from repro.sim import _ckern

        if _ckern.load_kernel() is None:
            pytest.skip("C kernel unavailable; only the pure engine runs here")
        kernel_rows = self._rows()
        monkeypatch.setattr(Simulator, "force_pure", True)
        pure_rows = self._rows()
        assert kernel_rows == pure_rows  # exact float equality, field by field

    def test_force_pure_flag_selects_python_engine(self, monkeypatch):
        monkeypatch.setattr(Simulator, "force_pure", True)
        s = sim()
        assert s._h is None
        done = s.send_leg(0, 1, 100, ready=0.0, is_data=True)
        assert done > 0.0


#: Failure schedules of the differential harness: link flaps with
#: recovery, permanent churn, revived churn, and precise single events --
#: on all three topology families (the kernel must take the supply path
#: everywhere).
FAILURE_FIXTURES = [
    ("mesh", "linkflap:rate=0.05:seed=3:horizon=0.01:down=0.5"),
    ("mesh", "linkflap:rate=0.2:seed=1:horizon=0.01:down=0"),
    ("mesh", "churn:nodes=0.2:seed=5:horizon=0.01"),
    ("mesh", "churn:nodes=0.1:seed=2:horizon=0.01:revive=0.5"),
    ("mesh", "nodedown:node=3:at=0.002"),
    ("mesh", "linkdown:link=5:at=0.001:up=0.004"),
    ("torus", "churn:nodes=0.2:seed=5:horizon=0.01"),
    ("torus", "linkflap:rate=0.05:seed=3:horizon=0.01:down=0.5"),
    ("hypercube", "churn:nodes=0.2:seed=5:horizon=0.01"),
    ("hypercube", "linkflap:rate=0.05:seed=3:horizon=0.01:down=0.5"),
]


class TestEngineEquivalenceUnderFailures:
    """Satellite: every failure schedule must run field-identical through
    the pure-Python loop and the C kernel -- including the availability
    counters (both engines resolve each (src, dst) pair exactly once per
    failure epoch)."""

    @staticmethod
    def _run(topology, failures, strategy):
        from repro.analysis.experiments import make_topology
        from repro.workloads import get_workload

        wl = get_workload("zipf")
        res = wl.run(
            make_topology(topology, 4), strategy, seed=1,
            params={"n_vars": 16, "ops": 24, "alpha": 0.8, "read_frac": 0.8},
            failures=failures,
        )
        s = res.stats
        return (
            res.time, s.total_bytes, s.total_msgs, s.congestion_bytes,
            s.congestion_msgs, s.max_startups, s.total_startups,
            s.data_msgs, s.ctrl_msgs, s.local_msgs,
            res.requests_failed, res.requests_stalled, res.requests_retried,
            res.repairs, res.failure_events,
        )

    @pytest.mark.parametrize("topology,failures", FAILURE_FIXTURES,
                             ids=[f"{t}-{f.split(':', 1)[0]}-{i}"
                                  for i, (t, f) in enumerate(FAILURE_FIXTURES)])
    @pytest.mark.parametrize("strategy", ["fixed-home", "4-ary", "migratory"])
    def test_kernel_matches_pure_under_failures(self, monkeypatch, topology,
                                                failures, strategy):
        from repro.sim import _ckern

        if _ckern.load_kernel() is None:
            pytest.skip("C kernel unavailable; only the pure engine runs here")
        kernel_fields = self._run(topology, failures, strategy)
        assert kernel_fields[-1] > 0  # the schedule actually fired
        monkeypatch.setattr(Simulator, "force_pure", True)
        pure_fields = self._run(topology, failures, strategy)
        assert kernel_fields == pure_fields  # exact equality, field by field


class TestSendChain:
    def test_chain_equals_sequential_legs(self):
        s1 = sim()
        t_chain = s1.send_chain([0, 1, 2], 500, ready=0.0, is_data=True)
        s2 = sim()
        t1 = s2.send_leg(0, 1, 500, ready=0.0, is_data=True)
        t2 = s2.send_leg(1, 2, 500, ready=t1, is_data=True)
        assert t_chain == pytest.approx(t2)

    def test_single_host_chain_is_noop(self):
        s = sim()
        assert s.send_chain([3], 100, ready=1.0, is_data=True) == 1.0
        assert s.stats.total_msgs == 0
