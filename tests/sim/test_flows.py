"""Flow executor tests: chains and multicast-with-acks through the heap."""

import pytest

from repro.network.machine import GCEL, ZERO_COST
from repro.network.mesh import Mesh2D
from repro.sim.engine import Simulator
from repro.sim.flows import chain, multicast_acks


def sim(machine=GCEL):
    return Simulator(Mesh2D(4, 4), machine)


class TestChain:
    def test_empty_chain_completes_immediately(self):
        s = sim()
        done = []
        chain(s, [], 3.0, done.append)
        s.run()
        assert done == [3.0]

    def test_chain_matches_synchronous_timing_when_alone(self):
        s1 = sim()
        done = []
        legs = [(0, 1, 500, True), (1, 2, 500, True)]
        chain(s1, legs, 0.0, done.append)
        s1.run()
        s2 = sim()
        t = s2.send_chain([0, 1, 2], 500, ready=0.0, is_data=True)
        assert done[0] == pytest.approx(t)

    def test_chain_records_traffic(self):
        s = sim(ZERO_COST)
        chain(s, [(0, 1, 100, True), (1, 2, 0, False)], 0.0, lambda t: None)
        s.run()
        assert s.stats.data_msgs == 1
        assert s.stats.ctrl_msgs == 1

    def test_legs_fire_in_time_order_across_chains(self):
        """Two chains through a shared NIC: legs interleave FCFS in time,
        not in initiation order of whole chains (no phantom convoys)."""
        s = sim()
        done = []
        # Chain A: long first leg 3->0, then 0->1.  Chain B: direct 0->2.
        chain(s, [(3, 0, 4000, True), (0, 1, 4000, True)], 0.0, lambda t: done.append(("A", t)))
        chain(s, [(0, 2, 100, True)], 0.0, lambda t: done.append(("B", t)))
        s.run()
        a = dict(done)["A"]
        b = dict(done)["B"]
        # B's single small leg must not wait behind A's *second* leg, which
        # only starts after A's first leg arrives.
        assert b < a

    def test_mixed_local_and_remote_legs(self):
        s = sim()
        done = []
        chain(s, [(0, 0, 100, True), (0, 1, 100, True)], 0.0, done.append)
        s.run()
        assert done and done[0] > 0


class TestMulticastAcks:
    def test_no_children_completes_immediately(self):
        s = sim()
        done = []
        multicast_acks(s, 0, {0: []}, {0: 5}, 2.0, done.append)
        s.run()
        assert done == [2.0]

    def test_star_multicast_counts_messages(self):
        s = sim(ZERO_COST)
        children = {0: [1, 2, 3]}
        hosts = {0: 0, 1: 5, 2: 6, 3: 7}
        done = []
        multicast_acks(s, 0, children, hosts, 0.0, done.append)
        s.run()
        # 3 invalidations + 3 acks, all control.
        assert s.stats.ctrl_msgs == 6
        assert done == [0.0]

    def test_deep_tree_ack_combining(self):
        s = sim(GCEL)
        children = {0: [1], 1: [2], 2: []}
        hosts = {0: 0, 1: 1, 2: 2}
        done = []
        multicast_acks(s, 0, children, hosts, 0.0, done.append)
        s.run()
        # Completion must cover the full down+up round trip: 4 legs.
        leg = GCEL.nic_overhead(GCEL.ctrl_bytes) * 2 + GCEL.ctrl_bytes / GCEL.link_bandwidth + GCEL.hop_latency
        assert done[0] >= 4 * leg * 0.99

    def test_completion_waits_for_slowest_branch(self):
        s = sim(GCEL)
        # Branch to host 3 (3 hops) vs host 1 (1 hop): completion is
        # bounded below by the far branch's round trip.
        children = {0: [1, 2]}
        hosts = {0: 0, 1: 1, 2: 3}
        done_far = []
        multicast_acks(s, 0, children, hosts, 0.0, done_far.append)
        s.run()
        s2 = sim(GCEL)
        done_near = []
        multicast_acks(s2, 0, {0: [1]}, {0: 0, 1: 1}, 0.0, done_near.append)
        s2.run()
        assert done_far[0] > done_near[0]

    def test_payload_marks_data(self):
        s = sim(ZERO_COST)
        multicast_acks(s, 0, {0: [1]}, {0: 0, 1: 1}, 0.0, lambda t: None, payload=100)
        s.run()
        assert s.stats.data_msgs == 1  # downward leg is data, ack is ctrl
        assert s.stats.ctrl_msgs == 1
