"""TCP ingest frontend: wire protocol round-trips over a real socket."""

import asyncio
import json

from repro.network.mesh import Mesh2D
from repro.serve import ServeSession
from repro.serve.frontend import ServeFrontend, selfcheck


class TestSelfcheck:
    def test_selfcheck_answers_every_request(self):
        out = selfcheck(side=4, requests=120, clients=3, n_vars=8, seed=0)
        assert out["selfcheck"] == "ok"
        assert out["answered"] == 120
        assert out["requests"] + out["rejected"] >= 120
        assert out["latency_p50"] <= out["latency_p99"]


class TestWireProtocol:
    def test_create_read_write_stats_and_errors(self):
        async def main():
            sess = ServeSession(Mesh2D(2, 2), "fixed-home", seed=0)
            fe = await ServeFrontend(sess, batch_interval=0.002).start()
            reader, writer = await asyncio.open_connection("127.0.0.1", fe.port)

            async def ask(msg):
                writer.write((json.dumps(msg) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            created = await ask({"op": "create", "proc": 1, "payload": 64})
            assert created == {"ok": True, "vid": 0}
            wrote = await ask({"op": "write", "proc": 2, "vid": 0,
                               "value": 7, "id": "w1"})
            assert wrote["ok"] and wrote["id"] == "w1" and wrote["time"] > 0
            read = await ask({"op": "read", "proc": 3, "vid": 0})
            assert read["ok"] and read["value"] == 7
            stats = await ask({"op": "stats"})
            assert stats["ok"] and stats["completed"] == 2
            bad_op = await ask({"op": "frobnicate"})
            assert not bad_op["ok"] and "unknown op" in bad_op["error"]
            # Malformed JSON must answer an error, not kill the server.
            writer.write(b"this is not json\n")
            await writer.drain()
            garbled = json.loads(await reader.readline())
            assert not garbled["ok"]
            still_alive = await ask({"op": "stats"})
            assert still_alive["ok"]

            writer.close()
            await fe.aclose()
            return sess.close()

        report = asyncio.run(main())
        assert report.requests == 2 and report.created == 1
