"""Fleet-merge properties (repro.serve.fleet).

The merged fleet view must be *recomputable* from the per-worker shards:
counters by integer addition, latency percentiles through sketch
merging (equal to one sketch fed the concatenation of every worker's
samples), link traffic through ``LinkStats.merge_state``.  And
``workers=1`` must never fork: its report is identical to driving
``run_loadgen`` on a fresh session directly.
"""

import numpy as np
import pytest

from repro.metrics import StreamingQuantiles, latency_percentiles
from repro.network.mesh import Mesh2D
from repro.network.stats import LinkStats
from repro.serve import ServeSession, run_fleet, run_loadgen
from repro.serve.fleet import spawn_seed, split_requests

PARAMS = {"n_vars": 16, "alpha": 0.9, "read_frac": 0.9}
OPTS = dict(workload="zipf", params=PARAMS, arrival="poisson",
            rate=5000.0, chunk=512)

#: Report fields that depend on the host's wall clock, not the request
#: stream -- excluded from determinism comparisons.
WALL_KEYS = {"wall_seconds", "requests_per_sec",
             "wall_p50", "wall_p95", "wall_p99"}


def make_session():
    return ServeSession(Mesh2D(4, 4), "4-ary", seed=0)


def sans_wall(d):
    return {k: v for k, v in d.items() if k not in WALL_KEYS}


class TestSharding:
    def test_split_is_even_and_exhaustive(self):
        shards = split_requests(10, 3)
        assert shards == [4, 3, 3]
        assert sum(shards) == 10

    def test_split_exact_division(self):
        assert split_requests(12, 4) == [3, 3, 3, 3]

    def test_too_few_requests_rejected(self):
        with pytest.raises(ValueError, match="shard"):
            split_requests(2, 3)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            split_requests(10, 0)

    def test_spawn_seeds_deterministic_and_distinct(self):
        seeds = [spawn_seed(42, i) for i in range(4)]
        assert seeds == [spawn_seed(42, i) for i in range(4)]
        assert len(set(seeds)) == 4
        assert seeds != [spawn_seed(43, i) for i in range(4)]


class TestWorkersOne:
    def test_identical_to_direct_loadgen(self):
        fleet = run_fleet(make_session, workers=1, requests=2000, seed=7,
                          **OPTS)
        direct = run_loadgen(make_session(), requests=2000, seed=7, **OPTS)
        assert len(fleet.workers) == 1
        assert sans_wall(fleet.workers[0].as_dict()) == sans_wall(
            direct.as_dict())

    def test_fleet_view_matches_single_report(self):
        fleet = run_fleet(make_session, workers=1, requests=2000, seed=7,
                          **OPTS)
        rep = fleet.workers[0]
        f = fleet.fleet
        assert f["workers"] == 1
        assert f["requests"] == rep.requests
        assert f["hits"] == rep.hits and f["misses"] == rep.misses
        assert f["hit_rate"] == pytest.approx(rep.hit_rate)
        assert f["latency_p50"] == pytest.approx(rep.latency_p50)
        assert f["latency_p99"] == pytest.approx(rep.latency_p99)
        assert f["total_msgs"] == rep.total_msgs
        assert f["total_bytes"] == pytest.approx(rep.total_bytes)


class TestFleetMerge:
    WORKERS = 3
    REQUESTS = 3001  # deliberately not divisible: remainder path exercised
    SEED = 11

    @pytest.fixture(scope="class")
    def fleet(self):
        return run_fleet(make_session, workers=self.WORKERS,
                         requests=self.REQUESTS, seed=self.SEED, **OPTS)

    @pytest.fixture(scope="class")
    def shard_runs(self):
        """Each worker's shard re-run sequentially in this process: the
        ground truth the forked fleet must agree with."""
        shards = split_requests(self.REQUESTS, self.WORKERS)
        runs = []
        for i in range(self.WORKERS):
            sess = make_session()
            rep = run_loadgen(sess, requests=shards[i],
                              seed=spawn_seed(self.SEED, i), **OPTS)
            runs.append((rep, sess))
        return runs

    def test_workers_ran_their_shards(self, fleet, shard_runs):
        shards = split_requests(self.REQUESTS, self.WORKERS)
        assert len(fleet.workers) == self.WORKERS
        for rep, shard in zip(fleet.workers, shards):
            assert rep.accepted + rep.rejected == shard

    def test_worker_reports_match_sequential_reruns(self, fleet, shard_runs):
        for worker_rep, (truth, _sess) in zip(fleet.workers, shard_runs):
            got = sans_wall(worker_rep.as_dict())
            got.pop("extra")
            want = sans_wall(truth.as_dict())
            want.pop("extra")
            assert got == want

    def test_offered_conserved_in_aggregate(self, fleet):
        f = fleet.fleet
        assert f["accepted"] + f["rejected"] == self.REQUESTS
        assert f["accepted"] == sum(r.accepted for r in fleet.workers)
        assert f["rejected"] == sum(r.rejected for r in fleet.workers)

    def test_counters_merge_by_addition(self, fleet):
        f = fleet.fleet
        # (congestion_* is NOT additive: it is recomputed from the merged
        # per-link totals -- pinned by test_link_totals_merge_exactly.)
        for key in ("requests", "hits", "misses", "created", "evictions",
                    "total_msgs"):
            assert f[key] == sum(getattr(r, key if key != "requests"
                                         else "requests")
                                 for r in fleet.workers), key
        assert f["hit_rate"] == pytest.approx(
            f["hits"] / (f["hits"] + f["misses"]))
        assert f["sim_time"] == max(r.sim_time for r in fleet.workers)

    def test_merged_percentiles_equal_concatenated_samples(
            self, fleet, shard_runs):
        merged = StreamingQuantiles()
        for _rep, sess in shard_runs:
            merged.merge(StreamingQuantiles.from_state(sess._lat_sim.state()))
        want = latency_percentiles(merged)
        f = fleet.fleet
        assert f["latency_p50"] == pytest.approx(want["p50"])
        assert f["latency_p95"] == pytest.approx(want["p95"])
        assert f["latency_p99"] == pytest.approx(want["p99"])

    def test_link_totals_merge_exactly(self, fleet, shard_runs):
        links = LinkStats(Mesh2D(4, 4))
        for _rep, sess in shard_runs:
            links.merge_state(sess.rt.sim.stats.state())
        snap = links.snapshot()
        f = fleet.fleet
        assert f["total_bytes"] == pytest.approx(snap.total_bytes)
        assert f["total_msgs"] == snap.total_msgs
        assert f["congestion_bytes"] == pytest.approx(snap.congestion_bytes)

    def test_worker_extras_annotated(self, fleet):
        for i, rep in enumerate(fleet.workers):
            assert rep.extra["worker"] == i
            assert rep.extra["workers"] == self.WORKERS
            assert rep.extra["parent_seed"] == self.SEED

    def test_to_dict_is_json_shaped(self, fleet):
        import json

        payload = fleet.to_dict()
        assert set(payload) == {"fleet", "workers"}
        assert len(payload["workers"]) == self.WORKERS
        json.dumps(payload)  # must not raise


class TestSketchMergeProperty:
    def test_merge_equals_concatenated_feed(self):
        rng = np.random.default_rng(3)
        parts = [rng.exponential(0.01, size=n) for n in (400, 700, 150)]
        merged = StreamingQuantiles()
        for part in parts:
            sk = StreamingQuantiles()
            for v in part:
                sk.add(v)
            merged.merge(StreamingQuantiles.from_state(sk.state()))
        concat = StreamingQuantiles()
        for v in np.concatenate(parts):
            concat.add(v)
        assert latency_percentiles(merged) == latency_percentiles(concat)


class TestExactLatencyFleet:
    def test_exact_stores_concatenate(self):
        def make_exact():
            return ServeSession(Mesh2D(4, 4), "4-ary", seed=0,
                                exact_latency=True)

        fleet = run_fleet(make_exact, workers=2, requests=1200, seed=5,
                          **OPTS)
        shards = split_requests(1200, 2)
        samples = []
        for i in range(2):
            sess = make_exact()
            run_loadgen(sess, requests=shards[i], seed=spawn_seed(5, i),
                        **OPTS)
            samples.append(np.asarray(sess._lat_sim, dtype=np.float64))
        want = latency_percentiles(np.concatenate(samples))
        f = fleet.fleet
        assert f["latency_p50"] == pytest.approx(want["p50"])
        assert f["latency_p99"] == pytest.approx(want["p99"])
