"""ServeSession queue-bound and admission-control properties.

The serving layer's contract: requests are never silently dropped
(accepted + rejected == offered, completed == accepted after close), the
ingest queue never exceeds ``max_queue``, the in-flight window never
exceeds ``max_inflight``, and arrivals are clamped nondecreasing.
"""

import pytest

from repro.network.mesh import Mesh2D
from repro.serve import QueueFull, ServeSession


def make_session(**kw):
    kw.setdefault("record", False)
    sess = ServeSession(Mesh2D(4, 4), "4-ary", **kw)
    for vid in range(8):
        sess.create(vid % sess.n_procs, 128)
    return sess


class TestValidation:
    def test_unknown_kind_rejected(self):
        sess = make_session()
        with pytest.raises(ValueError, match="kind"):
            sess.submit("x", 0, 0)

    def test_bad_processor_rejected(self):
        sess = make_session()
        with pytest.raises(ValueError, match="processor"):
            sess.submit("r", 99, 0)

    def test_bad_vid_rejected(self):
        sess = make_session()
        with pytest.raises(ValueError, match="variable"):
            sess.submit("r", 0, 42)

    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            ServeSession(Mesh2D(2, 2), "4-ary", max_queue=0)
        with pytest.raises(ValueError):
            ServeSession(Mesh2D(2, 2), "4-ary", max_inflight=0)

    def test_closed_session_refuses_work(self):
        sess = make_session()
        sess.submit("r", 0, 0)
        sess.close()
        with pytest.raises(RuntimeError, match="closed"):
            sess.submit("r", 0, 0)
        with pytest.raises(RuntimeError, match="closed"):
            sess.create(0)
        with pytest.raises(RuntimeError, match="closed"):
            sess.pump()

    def test_close_is_idempotent(self):
        sess = make_session()
        sess.submit("r", 0, 0)
        assert sess.close() is sess.close()


class TestAdmissionControl:
    def test_queue_depth_never_exceeds_max_queue(self):
        sess = make_session(max_queue=10)
        outcomes = [sess.try_submit("r", i % 16, i % 8) for i in range(25)]
        assert sess.queue_depth == 10
        assert outcomes.count(True) == 10 and outcomes.count(False) == 15

    def test_no_silent_drops(self):
        """Every offered request is accounted: accepted + rejected ==
        offered, and every accepted request completes."""
        sess = make_session(max_queue=7)
        offered = 40
        for i in range(offered):
            sess.try_submit("r", i % 16, i % 8)
            if i % 10 == 9:
                sess.pump()  # drain so later offers are admitted again
        assert sess.accepted + sess.rejected == offered
        rep = sess.close()
        assert rep.requests == rep.accepted == sess.accepted
        assert rep.rejected == sess.rejected
        assert rep.accepted + rep.rejected == offered

    def test_submit_raises_queue_full(self):
        sess = make_session(max_queue=1)
        sess.submit("r", 0, 0)
        with pytest.raises(QueueFull):
            sess.submit("r", 1, 1)
        assert sess.rejected == 1

    def test_inflight_window_is_respected(self):
        sess = make_session(max_inflight=4)
        for i in range(64):
            sess.submit("r", i % 16, i % 8, arrival=i * 1e-4)
        # Pump in small horizon slices; the injected-but-incomplete window
        # must never exceed max_inflight at any observation point.
        t = 0.0
        while sess.queue_depth or sess.inflight:
            t += 5e-4
            sess.pump(until=t)
            assert sess.inflight <= 4
        rep = sess.close()
        assert rep.requests == 64 and sess.inflight == 0


class TestArrivalClock:
    def test_arrivals_clamped_nondecreasing(self):
        sess = make_session()
        sess.submit("r", 0, 0, arrival=2.0)
        assert sess.arrival_floor == 2.0
        sess.submit("r", 1, 1, arrival=1.0)  # in the past: clamped
        assert sess.arrival_floor == 2.0
        sess.submit("r", 2, 2)  # None: right after the previous one
        assert sess.arrival_floor == 2.0
        sess.submit("r", 3, 3, arrival=3.5)
        assert sess.arrival_floor == 3.5

    def test_completion_callback_fires_with_sim_time(self):
        sess = make_session()
        seen = []
        sess.submit("r", 3, 0, arrival=0.5,
                    on_done=lambda it, t, v: seen.append((it.vid, t)))
        sess.pump()
        assert len(seen) == 1
        vid, t = seen[0]
        assert vid == 0 and t >= 0.5

    def test_latency_measured_from_requested_arrival(self):
        """A queued-behind request's latency includes its wait."""
        sess = make_session(max_inflight=1)
        done = []
        for i in range(8):
            # Writes from alternating far processors: every request costs
            # simulated time (no processor ends up holding the only copy),
            # so the single-slot window makes later ones wait longer.
            sess.submit("w", 15 if i % 2 else 12, 0, arrival=0.0,
                        on_done=lambda it, t, v: done.append(t))
        rep = sess.close()
        assert rep.requests == 8
        assert done == sorted(done)
        # All arrivals were 0.0, so p99 latency ~= the last completion.
        assert rep.latency_p99 > rep.latency_p50 > 0.0


class TestSnapshot:
    def test_snapshot_tracks_live_counters(self):
        sess = make_session()
        for i in range(12):
            sess.submit("r", i % 16, i % 8)
        sess.pump()
        snap = sess.snapshot()
        assert snap["completed"] == 12
        assert snap["accepted"] == 12 and snap["rejected"] == 0
        assert snap["queue_depth"] == 0 and snap["inflight"] == 0
        assert snap["sim_time"] > 0.0
        assert snap["total_msgs"] > 0
        assert 0.0 <= snap["hit_rate"] <= 1.0
        assert snap["latency_p50"] <= snap["latency_p99"]

    def test_report_counts_and_traffic(self):
        sess = make_session()
        for i in range(20):
            sess.submit("w" if i % 4 == 0 else "r", i % 16, i % 8)
        rep = sess.close()
        assert rep.requests == 20
        assert rep.created == 8
        assert rep.total_msgs > 0 and rep.total_bytes > 0
        assert rep.sim_time > 0 and rep.sim_requests_per_sec > 0
        assert rep.engine in ("ckern", "pure")
        d = rep.as_dict()
        assert d["requests"] == 20 and "latency_p95" in d
