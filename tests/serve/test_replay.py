"""Served-run determinism: trace replay and engine equivalence.

The serving tentpole's correctness anchor: a served run recorded through
the trace layer replays **bit-identically** in batch mode -- same end
time, same hit counters, same traffic totals -- because micro-batching
bounds engine run-ahead to the arrival horizon and idle gaps are recorded
as think-time ops.  And the C kernel serves the same stream the pure
loop does, field for field.
"""

import pytest

from repro.network.mesh import Mesh2D
from repro.network.torus import Torus2D
from repro.serve import ServeSession, run_loadgen
from repro.sim.engine import Simulator
from repro.workloads.trace import replay

PARAMS = {"n_vars": 24, "alpha": 0.8, "read_frac": 0.85}


def serve_small(topology, strategy, *, requests=300, seed=3, rate=4000.0):
    sess = ServeSession(topology, strategy, seed=0)
    report = run_loadgen(
        sess, workload="zipf", params=PARAMS, rate=rate,
        requests=requests, seed=seed, chunk=64,
    )
    return sess, report


def assert_replay_matches(sess, report):
    res = replay(sess.trace())
    assert res.time == report.sim_time            # exact, not approx
    assert res.hits == report.hits
    assert res.misses == report.misses
    assert res.stats.total_msgs == report.total_msgs
    assert res.stats.total_bytes == report.total_bytes
    assert res.stats.congestion_bytes == report.congestion_bytes
    assert res.stats.congestion_msgs == report.congestion_msgs


class TestServedTraceReplay:
    @pytest.mark.parametrize("strategy", [
        "4-ary", "fixed-home", "migratory", "dynrep:threshold=2",
    ])
    def test_served_stream_replays_bit_identically(self, strategy):
        sess, report = serve_small(Mesh2D(4, 4), strategy)
        assert report.requests == 300
        assert_replay_matches(sess, report)

    def test_replay_on_torus(self):
        sess, report = serve_small(Torus2D(4, 4), "4-ary")
        assert_replay_matches(sess, report)

    def test_trace_round_trips_through_disk(self, tmp_path):
        sess, report = serve_small(Mesh2D(4, 4), "4-ary", requests=120)
        path = tmp_path / "served.trace.json"
        sess.trace(params=report.extra).save(path)
        res = replay(path)
        assert res.time == report.sim_time
        assert res.stats.total_msgs == report.total_msgs

    def test_record_false_refuses_trace(self):
        sess = ServeSession(Mesh2D(2, 2), "4-ary", record=False)
        sess.create(0)
        sess.submit("r", 1, 0)
        sess.close()
        with pytest.raises(RuntimeError, match="record=False"):
            sess.trace()


class TestMicroBatchingInvariance:
    def test_horizon_sliced_pump_equals_single_drain(self):
        """Serving the identical stream epoch by epoch (bounded run-ahead)
        or in one unbounded drain must produce the same timeline."""

        def drive(sliced):
            sess = ServeSession(Mesh2D(4, 4), "4-ary", seed=0)
            for vid in range(8):
                sess.create(vid % 16, 128)
            for i in range(200):
                sess.submit("w" if i % 5 == 0 else "r", (3 * i) % 16,
                            i % 8, arrival=i * 2e-4)
                if sliced and i % 20 == 19:
                    sess.pump(until=i * 2e-4)
            rep = sess.close()
            return rep, sess.trace().ops

        rep_a, ops_a = drive(sliced=True)
        rep_b, ops_b = drive(sliced=False)
        assert rep_a.sim_time == rep_b.sim_time
        assert (rep_a.hits, rep_a.misses) == (rep_b.hits, rep_b.misses)
        assert rep_a.total_msgs == rep_b.total_msgs
        assert rep_a.total_bytes == rep_b.total_bytes
        assert ops_a == ops_b


class TestEngineEquivalence:
    def test_kernel_serves_identically_to_pure_python(self, monkeypatch):
        from repro.sim import _ckern

        if _ckern.load_kernel() is None:
            pytest.skip("C kernel unavailable; only the pure engine runs here")

        def run():
            sess, report = serve_small(Mesh2D(4, 4), "4-ary", requests=250)
            d = report.as_dict()
            # Wall-clock fields are host noise, engine label differs by
            # construction; every simulated quantity must match exactly.
            for key in ("engine", "wall_seconds", "requests_per_sec",
                        "wall_p50", "wall_p95", "wall_p99"):
                d.pop(key)
            return d, sess.trace().ops

        kernel_fields, kernel_ops = run()
        monkeypatch.setattr(Simulator, "force_pure", True)
        pure_fields, pure_ops = run()
        assert kernel_fields == pure_fields  # exact equality, field by field
        assert kernel_ops == pure_ops
