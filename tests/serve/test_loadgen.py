"""Load-generator properties: arrival registry, access samplers,
seeded reproducibility, and overload behavior."""

import numpy as np
import pytest

from repro.network.mesh import Mesh2D
from repro.serve import (
    ServeSession,
    access_sampler,
    arrival_names,
    get_arrival,
    register_arrival,
    run_loadgen,
)


class TestArrivalRegistry:
    def test_builtins_registered(self):
        assert "poisson" in arrival_names()
        assert "bursty" in arrival_names()

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValueError, match="poisson"):
            get_arrival("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_arrival("poisson")(lambda rate: None)

    def test_poisson_gaps_have_target_mean(self):
        draw = get_arrival("poisson")(1000.0)
        gaps = draw(np.random.default_rng(0), 20000)
        assert gaps.min() >= 0.0
        assert abs(gaps.mean() - 1e-3) < 1e-4

    def test_bursty_matches_long_run_rate(self):
        draw = get_arrival("bursty")(1000.0, burst=4)
        gaps = draw(np.random.default_rng(0), 20000)
        # Within a burst the gaps are zero; across bursts the long-run
        # rate matches poisson's.
        assert (gaps == 0.0).sum() >= 20000 * 3 // 4 - 4
        assert abs(gaps.mean() - 1e-3) < 1e-4

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            get_arrival("poisson")(0.0)
        with pytest.raises(ValueError):
            get_arrival("bursty")(100.0, burst=0)


class TestAccessSampler:
    def test_synthetic_workload_sampled_analytically(self):
        n_vars, payload, draw = access_sampler(
            "zipf", {"n_vars": 32, "alpha": 1.0, "read_frac": 0.7}
        )
        assert n_vars == 32 and payload > 0
        vids, is_read = draw(np.random.default_rng(1), 8000)
        assert vids.min() >= 0 and vids.max() < 32
        assert abs(is_read.mean() - 0.7) < 0.05
        # Zipf: the hottest variable dominates a uniform share.
        assert (vids == 0).mean() > 2.0 / 32

    def test_registered_app_workload_sampled_empirically(self):
        n_vars, payload, draw = access_sampler("matmul")
        assert n_vars > 0 and payload > 0
        vids, is_read = draw(np.random.default_rng(0), 500)
        assert vids.min() >= 0 and vids.max() < n_vars
        assert 0.0 < is_read.mean() < 1.0

    def test_empirical_branch_rejects_custom_params(self):
        with pytest.raises(ValueError, match="empirically"):
            access_sampler("matmul", {"block_entries": 64})


class TestRunLoadgen:
    def _run(self, seed=7, **kw):
        sess = ServeSession(Mesh2D(4, 4), "4-ary", seed=0)
        kw.setdefault("params", {"n_vars": 16, "alpha": 0.9})
        return sess, run_loadgen(
            sess, workload="zipf", rate=5000.0, requests=400,
            seed=seed, chunk=64, **kw,
        )

    def test_seeded_run_is_reproducible(self):
        sess_a, rep_a = self._run()
        sess_b, rep_b = self._run()
        assert rep_a.sim_time == rep_b.sim_time
        assert (rep_a.hits, rep_a.misses) == (rep_b.hits, rep_b.misses)
        assert rep_a.total_msgs == rep_b.total_msgs
        assert rep_a.latency_p99 == rep_b.latency_p99
        assert sess_a.trace().ops == sess_b.trace().ops

    def test_different_seed_different_stream(self):
        _, rep_a = self._run(seed=7)
        _, rep_b = self._run(seed=8)
        assert rep_a.sim_time != rep_b.sim_time

    def test_report_extra_records_the_offered_load(self):
        _, rep = self._run()
        assert rep.extra["workload"] == "zipf"
        assert rep.extra["arrival"] == "poisson"
        assert rep.extra["rate"] == 5000.0
        assert rep.extra["requests_offered"] == 400
        assert rep.extra["n_vars"] == 16

    def test_bursty_arrivals_queue_harder(self):
        _, poisson = self._run(arrival="poisson")
        _, bursty = self._run(arrival="bursty",
                              arrival_opts={"burst": 32})
        assert bursty.requests == poisson.requests == 400
        # Same long-run rate, spikier queueing: bursts wait behind each
        # other, so tail latency is strictly worse.
        assert bursty.latency_p99 > poisson.latency_p99

    def test_overload_with_tiny_queue_rejects_not_drops(self):
        sess = ServeSession(Mesh2D(2, 2), "4-ary", seed=0, max_queue=16)
        rep = run_loadgen(
            sess, workload="zipf", params={"n_vars": 8, "alpha": 0.5},
            rate=1e9, requests=600, seed=0, chunk=600,
        )
        assert rep.rejected > 0
        assert rep.accepted + rep.rejected == 600
        assert rep.requests == rep.accepted

    def test_snapshot_callback_sees_progress(self):
        seen = []
        self._run(snapshot_every=2, on_snapshot=seen.append)
        assert seen and seen[-1]["completed"] > 0
