"""Trace record/replay tests.

The acceptance contract: replaying a recorded run of each paper app under
the *same* strategy × topology reproduces the live run's traffic totals
and execution time exactly; replaying under a *different* strategy or
topology re-simulates the identical access stream there.
"""

import pytest

from repro.network.mesh import Mesh2D
from repro.network.topology import Hypercube
from repro.network.torus import Torus2D
from repro.workloads import Trace, get_workload, record, replay
from repro.workloads.trace import retarget_topology, topology_from_spec, topology_spec


def totals(res):
    return (
        res.time,
        res.stats.total_bytes,
        res.stats.total_msgs,
        res.stats.congestion_bytes,
        res.stats.congestion_msgs,
        res.stats.max_startups,
        res.stats.total_startups,
        res.stats.data_msgs,
        res.stats.ctrl_msgs,
        res.stats.local_msgs,
    )


#: One recording configuration per paper app (plus a handopt baseline and
#: a synthetic kernel) -- small enough for tier-1, rich enough to cover
#: reads, writes, locks, barriers with phases/resets, sends and receives.
CASES = [
    ("matmul", {"block_entries": 64}, "4-ary"),
    ("matmul", {"block_entries": 64}, "handopt"),
    ("bitonic", {"keys": 64}, "2-4-ary"),
    ("barneshut", {"bodies": 64, "steps": 2, "warm": 1}, "4-ary"),
    ("zipf", {"n_vars": 16, "ops": 8}, "fixed-home"),
]


class TestReplayEquivalence:
    @pytest.mark.parametrize("workload,params,strategy", CASES,
                             ids=[f"{w}-{s}" for w, _, s in CASES])
    def test_same_config_replay_is_exact(self, workload, params, strategy):
        live, trace = record(workload, Mesh2D(4, 4), strategy, params=params, seed=0)
        rep = replay(trace)
        assert totals(rep) == totals(live)

    def test_replay_preserves_phase_breakdown(self):
        live, trace = record(
            "barneshut", Mesh2D(2, 2), "2-ary", params={"bodies": 32, "steps": 2, "warm": 1}
        )
        rep = replay(trace)
        assert [p.name for p in rep.phases] == [p.name for p in live.phases]
        for lp, rp in zip(live.phases, rep.phases):
            assert rp.time == lp.time
            assert rp.stats.total_msgs == lp.stats.total_msgs

    def test_replay_honors_measurement_reset(self):
        """Barnes-Hut's warm-up window (reset at the warm barrier) must
        replay: measured time < end-to-end time."""
        _, trace = record(
            "barneshut", Mesh2D(2, 2), "2-ary", params={"bodies": 32, "steps": 2, "warm": 1}
        )
        rep = replay(trace)
        assert 0 < rep.time < rep.end_time


class TestCrossReplay:
    @pytest.fixture(scope="class")
    def matmul_trace(self):
        _, trace = record("matmul", Mesh2D(4, 4), "4-ary", params={"block_entries": 64})
        return trace

    def test_replay_under_other_strategies(self, matmul_trace):
        results = {
            name: replay(matmul_trace, strategy=name)
            for name in ("fixed-home", "2-ary", "16-ary")
        }
        for name, res in results.items():
            assert res.strategy == name
            assert res.stats.total_msgs > 0
        # Different strategies must actually produce different traffic.
        assert len({r.stats.total_bytes for r in results.values()}) > 1

    def test_replay_under_other_topologies(self, matmul_trace):
        for topo in (Torus2D(4, 4), Hypercube(4)):
            res = replay(matmul_trace, topology=topo)
            assert res.mesh == topo.label
            assert res.stats.total_msgs > 0

    def test_replay_rejects_wrong_processor_count(self, matmul_trace):
        with pytest.raises(ValueError, match="16 processors"):
            replay(matmul_trace, topology=Mesh2D(2, 2))


class TestTraceFile:
    @pytest.mark.parametrize("suffix", [".json", ".json.gz"])
    def test_save_load_roundtrip(self, tmp_path, suffix):
        live, trace = record("bitonic", Mesh2D(2, 2), "2-ary", params={"keys": 32},
                             path=tmp_path / f"t{suffix}")
        loaded = Trace.load(tmp_path / f"t{suffix}")
        assert loaded.header == trace.header
        assert loaded.ops == trace.ops
        assert totals(replay(loaded)) == totals(live)

    def test_gzip_is_compact(self, tmp_path):
        _, trace = record("bitonic", Mesh2D(4, 4), "2-ary", params={"keys": 64})
        plain = trace.save(tmp_path / "t.json")
        gz = trace.save(tmp_path / "t.json.gz")
        assert gz.stat().st_size < plain.stat().st_size / 4

    def test_non_trace_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"header": {"format": "something-else"}, "ops": []}')
        with pytest.raises(ValueError, match="not a repro trace"):
            Trace.load(bad)

    def test_counts_and_creates(self):
        _, trace = record("matmul", Mesh2D(2, 2), "4-ary", params={"block_entries": 16})
        counts = trace.counts()
        assert counts["c"] == 4  # one block per processor
        assert counts["r"] > 0 and counts["w"] > 0 and counts["b"] > 0
        creates = trace.creates()
        assert [vid for vid, _, _ in creates] == list(range(4))


class TestTopologySpec:
    @pytest.mark.parametrize(
        "topo", [Mesh2D(2, 4), Torus2D(4, 4), Hypercube(3)],
        ids=["mesh-rect", "torus", "hypercube"],
    )
    def test_spec_roundtrip(self, topo):
        rebuilt = topology_from_spec(topology_spec(topo))
        assert rebuilt.kind == topo.kind
        assert rebuilt.n_nodes == topo.n_nodes
        assert rebuilt.label == topo.label


class TestRetarget:
    def test_same_kind_keeps_exact_shape(self):
        topo = retarget_topology(topology_spec(Torus2D(2, 8)), "torus")
        assert (topo.rows, topo.cols) == (2, 8)

    def test_grid_to_grid_preserves_shape(self):
        """A 2x8 torus trace retargets to the 2x8 mesh, not a re-squared
        4x4 (regression: the CLI used isqrt of the processor count)."""
        topo = retarget_topology(topology_spec(Torus2D(2, 8)), "mesh")
        assert topo.kind == "mesh"
        assert (topo.rows, topo.cols) == (2, 8)

    @pytest.mark.parametrize("dim", [3, 5])
    def test_non_square_hypercube_retargets_to_hypercube(self, dim):
        """Hypercube(3)/(5) have non-square processor counts; retargeting
        hypercube->hypercube must still work (regression: isqrt check)."""
        spec = topology_spec(Hypercube(dim))
        assert retarget_topology(spec, "hypercube").n_nodes == 2**dim

    def test_non_square_count_to_grid_rejected(self):
        with pytest.raises(ValueError, match="square grid"):
            retarget_topology(topology_spec(Hypercube(3)), "mesh")

    def test_non_power_of_two_to_hypercube_rejected(self):
        with pytest.raises(ValueError, match="power-of-two"):
            retarget_topology(topology_spec(Mesh2D(3, 4)), "hypercube")

    def test_grid_to_hypercube_matches_node_count(self):
        topo = retarget_topology(topology_spec(Mesh2D(4, 4)), "hypercube")
        assert topo.kind == "hypercube" and topo.n_nodes == 16


class TestRecorderContract:
    def test_recorder_is_single_use(self):
        from repro.workloads.trace import TraceRecorder
        from repro.runtime.launcher import Runtime
        from repro.core.registry import get_strategy

        rec = TraceRecorder()
        mesh = Mesh2D(2, 2)
        Runtime(mesh, get_strategy("4-ary", mesh), recorder=rec)
        with pytest.raises(RuntimeError, match="exactly one run"):
            Runtime(mesh, get_strategy("4-ary", mesh), recorder=rec)

    def test_recording_does_not_change_the_run(self):
        wl = get_workload("bitonic")
        plain = wl.run(Mesh2D(4, 4), "2-4-ary", params={"keys": 64})
        recorded, _ = record("bitonic", Mesh2D(4, 4), "2-4-ary", params={"keys": 64})
        assert totals(recorded) == totals(plain)


def availability(res):
    return (
        res.requests_failed,
        res.requests_stalled,
        res.requests_retried,
        res.repairs,
        res.failure_events,
    )


#: Failure schedules exercised by the replay-determinism contract: link
#: flaps (detours), churn (repairs + unreachable pairs) and a precise
#: permanent node death.
FAILURE_SPECS = [
    "linkflap:rate=0.05:seed=3:horizon=0.01:down=0.5",
    "churn:nodes=0.2:seed=5:horizon=0.01",
    "nodedown:node=3:at=0.002",
]


class TestFailureReplay:
    """Satellite: trace record/replay determinism under failures -- a
    trace recorded with a failure schedule replays to identical LinkStats
    totals *and* availability counters."""

    @pytest.mark.parametrize("failures", FAILURE_SPECS)
    def test_failure_replay_is_exact(self, failures):
        live, trace = record(
            "zipf", Mesh2D(4, 4), "fixed-home",
            params={"n_vars": 16, "ops": 8}, seed=0, failures=failures,
        )
        assert live.failure_events > 0
        rep = replay(trace)
        assert totals(rep) == totals(live)
        assert availability(rep) == availability(live)

    def test_header_records_canonical_spec(self):
        spec = FAILURE_SPECS[0]
        _, trace = record(
            "zipf", Mesh2D(4, 4), "fixed-home",
            params={"n_vars": 16, "ops": 8}, failures=spec,
        )
        assert trace.header["failures"] == spec

    def test_replay_override_none_disables_schedule(self):
        live, trace = record(
            "zipf", Mesh2D(4, 4), "fixed-home",
            params={"n_vars": 16, "ops": 8}, failures=FAILURE_SPECS[1],
        )
        clean = replay(trace, failures="none")
        assert clean.failure_events == 0
        assert availability(clean) == (0, 0, 0, 0, 0)
        # The clean replay matches a plain no-failure run of the stream.
        plain_live, plain_trace = record(
            "zipf", Mesh2D(4, 4), "fixed-home", params={"n_vars": 16, "ops": 8},
        )
        assert totals(clean) == totals(plain_live)

    def test_pre_failure_traces_default_to_none(self):
        """Traces written before the failure axis have no 'failures' key;
        replay must treat them as schedule-free."""
        _, trace = record(
            "zipf", Mesh2D(4, 4), "fixed-home", params={"n_vars": 16, "ops": 8},
        )
        del trace.header["failures"]
        rep = replay(trace)
        assert rep.failure_events == 0
