"""Hotspot-drift kernel: deterministic streams, exact drift boundaries,
and the drift=0 degeneration to the zipf kernel."""

import pytest

from repro.network.mesh import Mesh2D
from repro.network.topology import make_topology
from repro.workloads import get_workload
from repro.workloads.synthetic import HotspotDriftWorkload, _zipf_stream


class TestRegistration:
    def test_registered(self):
        wl = get_workload("hotspot-drift")
        assert isinstance(wl, HotspotDriftWorkload)
        assert wl.defaults["drift"] == 2

    @pytest.mark.parametrize("params,msg", [
        ({"drift": -1}, "drift must be >= 0"),
        ({"shift": -2}, "shift must be >= 0"),
        ({"read_frac": 1.5}, "read_frac must be in"),
    ])
    def test_invalid_params_rejected(self, params, msg):
        wl = get_workload("hotspot-drift")
        with pytest.raises(ValueError, match=msg):
            wl.run(Mesh2D(2, 2), "fixed-home", params={"ops": 4, **params})


class TestDeterminism:
    def test_same_seed_same_result(self):
        wl = get_workload("hotspot-drift")
        p = {"n_vars": 32, "ops": 40, "drift": 3}
        a = wl.run(Mesh2D(4, 4), "dynrep", seed=5, params=p)
        b = wl.run(Mesh2D(4, 4), "dynrep", seed=5, params=p)
        assert a.as_dict() == b.as_dict()

    def test_seed_changes_the_stream(self):
        wl = get_workload("hotspot-drift")
        p = {"n_vars": 32, "ops": 40, "drift": 3}
        a = wl.run(Mesh2D(4, 4), "dynrep", seed=5, params=p)
        b = wl.run(Mesh2D(4, 4), "dynrep", seed=6, params=p)
        assert a.as_dict() != b.as_dict()

    def test_draw_streams_shared_with_zipf(self):
        """The kernel reuses the zipf per-rank streams verbatim (the
        ``_zipf_stream`` memo): drift shifts draws, it never redraws."""
        s1 = _zipf_stream(3, 0, 32, 40, 1.0, 0.9)
        s2 = _zipf_stream(3, 0, 32, 40, 1.0, 0.9)
        assert s1 is s2  # memoized

    def test_drift_zero_is_exactly_zipf(self):
        p = {"n_vars": 32, "ops": 40, "alpha": 1.0, "read_frac": 0.9}
        drift = get_workload("hotspot-drift").run(
            Mesh2D(4, 4), "4-ary", seed=3, params={**p, "drift": 0})
        zipf = get_workload("zipf").run(Mesh2D(4, 4), "4-ary", seed=3, params=p)
        assert drift.as_dict() == zipf.as_dict()

    @pytest.mark.parametrize("topology", ["mesh", "torus", "hypercube"])
    def test_runs_on_every_topology_family(self, topology):
        wl = get_workload("hotspot-drift")
        res = wl.run(make_topology(topology, 4), "adaptive", seed=1,
                     params={"ops": 12, "drift": 2})
        assert res.time > 0


class TestDriftBoundaries:
    def test_segment_starts_are_exact(self):
        """The head rotates exactly at ``floor(ops * j / (drift + 1))``:
        op k uses offset ``seg(k) * shift`` where seg counts crossed
        boundaries.  Verified against the generated access stream."""
        n_vars, ops, drift, shift, seed = 16, 10, 2, 3, 0
        import numpy as np
        perm = np.random.default_rng((seed, 23)).permutation(n_vars).tolist()
        targets, _ = _zipf_stream(seed, 0, n_vars, ops, 1.0, 1.0)
        # drift+1 = 3 segments over 10 ops: starts at 3 and 6 (floor).
        starts = [ops * j // (drift + 1) for j in (1, 2)]
        assert starts == [3, 6]
        expected = []
        for k in range(ops):
            seg = sum(1 for s in starts if k >= s)
            expected.append(perm[(targets[k] + seg * shift) % n_vars])

        seen = []
        wl = get_workload("hotspot-drift")
        wl_params = {"n_vars": n_vars, "ops": ops, "alpha": 1.0,
                     "read_frac": 1.0, "drift": drift, "shift": shift}
        program, _ = wl.make_program(Mesh2D(1, 1), None, seed,
                                     wl.resolve_params(wl_params))

        class Env:
            rank = 0
            nprocs = 1

            def create(self, name, payload, value=None):
                class H:
                    pass
                h = H()
                h.idx = int(name[1:])
                return h

            def barrier(self, phase=None):
                return iter(())

        for req in program(Env()):
            if hasattr(req, "var"):
                seen.append(req.var.idx)
        assert seen == expected

    def test_auto_shift_spaces_segments(self):
        """``shift=0`` auto-picks ``max(1, n_vars // (drift + 1))``: the
        rotated heads are disjoint for small drift."""
        wl = get_workload("hotspot-drift")
        res_auto = wl.run(Mesh2D(2, 2), "fixed-home", seed=2,
                          params={"n_vars": 30, "ops": 20, "drift": 2, "shift": 0})
        res_expl = wl.run(Mesh2D(2, 2), "fixed-home", seed=2,
                          params={"n_vars": 30, "ops": 20, "drift": 2, "shift": 10})
        assert res_auto.as_dict() == res_expl.as_dict()
