"""Workload abstraction + registry tests."""

import pytest

from repro.apps import bitonic, matmul
from repro.network.machine import GCEL
from repro.network.mesh import Mesh2D
from repro.network.topology import Hypercube
from repro.core.registry import get_strategy
from repro.workloads import WORKLOADS, Workload, get_workload, register, workload_names

EXPECTED_NAMES = {
    "matmul", "bitonic", "barneshut",  # the paper's applications
    "zipf", "uniform", "prodcons", "lock-contention",  # synthetic kernels
}


class TestRegistry:
    def test_expected_workloads_registered(self):
        assert EXPECTED_NAMES <= set(workload_names())

    def test_names_sorted(self):
        assert workload_names() == sorted(WORKLOADS)

    def test_unknown_name_rejected_with_listing(self):
        with pytest.raises(KeyError, match="zipf"):
            get_workload("does-not-exist")

    def test_conflicting_reregistration_rejected(self):
        class Impostor(Workload):
            name = "matmul"

        with pytest.raises(ValueError, match="already registered"):
            register(Impostor())

    def test_reregistering_same_class_is_idempotent(self):
        wl = get_workload("zipf")
        assert register(type(wl)()) is not None
        assert get_workload("zipf").name == "zipf"

    def test_every_workload_has_size_param_in_defaults(self):
        for name in workload_names():
            wl = get_workload(name)
            if wl.size_param is not None:
                assert wl.size_param in wl.defaults, name


class TestParams:
    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            get_workload("bitonic").resolve_params({"bogus": 1})

    def test_defaults_merged(self):
        p = get_workload("zipf").resolve_params({"alpha": 2.0})
        assert p["alpha"] == 2.0
        assert p["read_frac"] == 0.9  # untouched default


class TestTopologyCompatibility:
    def test_matmul_rejects_hypercube(self):
        with pytest.raises(ValueError, match="mesh/torus"):
            get_workload("matmul").run(Hypercube(4), "4-ary")

    def test_bitonic_runs_on_hypercube(self):
        res = get_workload("bitonic").run(Hypercube(4), "2-4-ary", params={"keys": 32})
        assert res.time > 0


class TestPaperAdapters:
    """The workload layer must be a pure re-plumbing of the apps: same
    arguments in, identical numbers out."""

    def test_matmul_equals_direct_app_call(self):
        mesh = Mesh2D(4, 4)
        wl = get_workload("matmul").run(mesh, "4-ary", seed=1, params={"block_entries": 64})
        direct = matmul.run_diva(
            mesh, get_strategy("4-ary", mesh, seed=1), 64, machine=GCEL, seed=1
        )
        assert wl.time == direct.time
        assert wl.total_bytes == direct.total_bytes
        assert wl.stats.total_msgs == direct.stats.total_msgs

    def test_bitonic_handopt_equals_direct_app_call(self):
        mesh = Mesh2D(4, 4)
        wl = get_workload("bitonic").run(mesh, "handopt", params={"keys": 64})
        direct = bitonic.run_handopt(mesh, 64, machine=GCEL, seed=0)
        assert wl.time == direct.time
        assert wl.congestion_bytes == direct.congestion_bytes

    def test_matmul_general_variant(self):
        mesh = Mesh2D(4, 4)
        res = get_workload("matmul").run(
            mesh, "4-ary", params={"block_entries": 64, "variant": "general"}
        )
        assert res.extra["app"] == "matmul-general"

    def test_matmul_handopt_general_rejected(self):
        with pytest.raises(ValueError, match="only squares"):
            get_workload("matmul").run(
                Mesh2D(4, 4), "handopt", params={"variant": "general"}
            )

    def test_barneshut_has_no_handopt(self):
        with pytest.raises(ValueError, match="no hand-optimized"):
            get_workload("barneshut").run(Mesh2D(2, 2), "handopt")

    def test_synthetic_has_no_handopt(self):
        with pytest.raises(ValueError, match="no hand-optimized"):
            get_workload("zipf").run(Mesh2D(2, 2), "handopt")
