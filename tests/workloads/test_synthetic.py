"""Synthetic access-pattern generator tests.

The load-bearing property is *determinism*: a synthetic kernel's access
stream -- and therefore every simulated quantity -- must be a pure
function of (seed, parameters).  Without it the result cache and the
jobs-parallel runner would silently produce irreproducible rows.
"""

import numpy as np
import pytest

from repro.network.mesh import Mesh2D
from repro.network.topology import Hypercube
from repro.network.torus import Torus2D
from repro.workloads import get_workload
from repro.workloads.synthetic import zipf_weights

SYNTHETIC = ("zipf", "uniform", "prodcons", "lock-contention")

#: Small-but-nontrivial parameters per kernel (4x4 mesh scale).
QUICK_PARAMS = {
    "zipf": {"n_vars": 16, "ops": 12},
    "uniform": {"n_vars": 16, "rounds": 1},
    "prodcons": {"rounds": 3},
    "lock-contention": {"n_locks": 3, "ops": 4},
}


def fingerprint(res):
    """Everything a regression could show up in."""
    return (
        res.time,
        res.total_bytes,
        res.stats.total_msgs,
        res.congestion_bytes,
        res.stats.congestion_msgs,
        res.stats.max_startups,
        res.stats.data_msgs,
        res.stats.ctrl_msgs,
    )


class TestDeterminism:
    @pytest.mark.parametrize("name", SYNTHETIC)
    def test_same_seed_same_run(self, name):
        wl = get_workload(name)
        a = wl.run(Mesh2D(4, 4), "4-ary", seed=3, params=QUICK_PARAMS[name])
        b = wl.run(Mesh2D(4, 4), "4-ary", seed=3, params=QUICK_PARAMS[name])
        assert fingerprint(a) == fingerprint(b)

    @pytest.mark.parametrize("name", ("zipf", "lock-contention"))
    def test_different_seed_different_stream(self, name):
        """The randomized kernels must actually consume the seed."""
        wl = get_workload(name)
        a = wl.run(Mesh2D(4, 4), "4-ary", seed=0, params=QUICK_PARAMS[name])
        b = wl.run(Mesh2D(4, 4), "4-ary", seed=1, params=QUICK_PARAMS[name])
        assert fingerprint(a) != fingerprint(b)


class TestAllTopologies:
    @pytest.mark.parametrize("name", SYNTHETIC)
    @pytest.mark.parametrize(
        "topo_factory", [lambda: Mesh2D(4, 4), lambda: Torus2D(4, 4), lambda: Hypercube(4)],
        ids=["mesh", "torus", "hypercube"],
    )
    def test_runs_everywhere(self, name, topo_factory):
        res = get_workload(name).run(topo_factory(), "2-4-ary", params=QUICK_PARAMS[name])
        assert res.time > 0
        assert res.stats.total_msgs > 0


class TestZipf:
    def test_weights_normalized_and_skewed(self):
        w = zipf_weights(10, 1.0)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0)  # strictly decreasing
        assert np.allclose(zipf_weights(10, 0.0), 0.1)  # alpha=0 uniform

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(4, -1.0)

    def test_read_frac_bounds_validated(self):
        with pytest.raises(ValueError, match="read_frac"):
            get_workload("zipf").run(Mesh2D(2, 2), "4-ary", params={"read_frac": 1.5})

    def test_read_only_mix_writes_nothing(self):
        res = get_workload("zipf").run(
            Mesh2D(4, 4), "4-ary", params={"n_vars": 16, "ops": 12, "read_frac": 1.0}
        )
        rt = res.extra["runtime"]
        # All variables keep their initial value: no write ever happened.
        assert all(rt.registry.get(v) == 0 for v in rt.registry)

    def test_skew_concentrates_fixed_home_congestion(self):
        """The motivating effect: under fixed-home, a hotter hotspot
        drives congestion up (all misses funnel to one home)."""
        wl = get_workload("zipf")
        p = {"n_vars": 32, "ops": 24}
        mild = wl.run(Mesh2D(4, 4), "fixed-home", params={**p, "alpha": 0.0})
        hot = wl.run(Mesh2D(4, 4), "fixed-home", params={**p, "alpha": 2.0})
        assert hot.congestion_bytes > mild.congestion_bytes


class TestKernelInvariants:
    def test_lock_contention_counts_every_increment(self):
        """The kernel's internal check: counters sum to P * ops (mutual
        exclusion preserved under contention)."""
        res = get_workload("lock-contention").run(
            Mesh2D(4, 4), "4-ary", params={"n_locks": 2, "ops": 5}
        )
        assert res.lock_acquisitions == 16 * 5

    def test_prodcons_delivers_in_order(self):
        # The kernel asserts reads observe the same-round value; a
        # completed run is the invariant.
        res = get_workload("prodcons").run(Mesh2D(4, 4), "2-ary", params={"rounds": 2})
        assert res.stats.data_msgs > 0

    def test_uniform_write_back_invalidates(self):
        """With write-back on, round 2 must re-fetch what round 1 cached:
        strictly more traffic than the read-only variant."""
        wl = get_workload("uniform")
        p = {"n_vars": 16, "rounds": 2}
        with_wb = wl.run(Mesh2D(4, 4), "4-ary", params={**p, "write_back": True})
        without = wl.run(Mesh2D(4, 4), "4-ary", params={**p, "write_back": False})
        assert with_wb.total_bytes > without.total_bytes
