"""LinkStats accounting tests."""

import pytest

from repro.network.mesh import Mesh2D
from repro.network.routing import route_links
from repro.network.stats import LinkStats


def make():
    m = Mesh2D(3, 3)
    return m, LinkStats(m)


class TestRecord:
    def test_congestion_is_max_over_links(self):
        m, s = make()
        path1 = route_links(m, 0, 2)  # two east links in row 0
        s.record(path1, 100, 0, 2, True)
        s.record(path1[:1], 50, 0, 1, True)
        assert s.congestion_bytes == 150
        assert s.congestion_msgs == 2
        assert s.total_bytes == 100 * 2 + 50

    def test_local_message_counts_no_link(self):
        m, s = make()
        s.record((), 100, 4, 4, True)
        assert s.congestion_bytes == 0
        assert s.local_msgs == 1
        assert s.total_msgs == 1
        assert s.startups[4] == 1
        assert s.receives[4] == 1

    def test_data_vs_ctrl_counts(self):
        m, s = make()
        s.record(route_links(m, 0, 1), 10, 0, 1, True)
        s.record(route_links(m, 0, 1), 10, 0, 1, False)
        assert s.data_msgs == 1
        assert s.ctrl_msgs == 1

    def test_startups_per_processor(self):
        m, s = make()
        for _ in range(3):
            s.record(route_links(m, 0, 1), 1, 0, 1, False)
        s.record(route_links(m, 1, 0), 1, 1, 0, False)
        snap = s.snapshot()
        assert snap.max_startups == 3
        assert snap.total_startups == 4

    def test_hottest_links(self):
        m, s = make()
        s.record(route_links(m, 0, 2), 500, 0, 2, True)
        top = s.hottest_links(1)[0]
        assert top[3] == 500

    def test_empty_stats(self):
        m, s = make()
        snap = s.snapshot()
        assert snap.congestion_bytes == 0
        assert snap.total_msgs == 0


class TestCheckpointDelta:
    def test_delta_isolates_interval(self):
        m, s = make()
        s.record(route_links(m, 0, 2), 100, 0, 2, True)
        ck = s.checkpoint()
        s.record(route_links(m, 0, 2), 40, 0, 2, False)
        d = s.delta(ck)
        assert d.total_msgs == 1
        assert d.ctrl_msgs == 1
        assert d.data_msgs == 0
        assert d.congestion_bytes == 40

    def test_delta_of_nothing(self):
        m, s = make()
        ck = s.checkpoint()
        d = s.delta(ck)
        assert d.total_bytes == 0
        assert d.max_startups == 0

    def test_snapshot_as_dict(self):
        m, s = make()
        d = s.snapshot().as_dict()
        assert "congestion_bytes" in d and "total_msgs" in d
