"""Sparse per-link accumulators vs the dense arrays.

Above ``DENSE_NODE_LIMIT`` a :class:`LinkStats` keeps only the links
actually crossed (three parallel arrays keyed by sorted link id); below
it the historical dense arrays remain.  Every observable -- snapshots,
materialized arrays, hottest-links, rendering, checkpoint deltas, and
worker-shard merges in all four dense/sparse combinations -- must be
bit-identical between the two representations, because the engine picks
one purely by machine size.
"""

import numpy as np
import pytest

from repro.network.mesh import Mesh2D
from repro.network.routing import DENSE_NODE_LIMIT, route_links
from repro.network.stats import LinkStats
from repro.network.topology import Hypercube

TOPO = Mesh2D(4, 4)

# A fixed leg script: remote data, remote ctrl, local (no links), and a
# repeat of a hot route so some links accumulate more than once.
LEGS = [
    (route_links(TOPO, 0, 15), 1000.0, 0, 15, True),
    (route_links(TOPO, 15, 0), 64.0, 15, 0, False),
    ((), 400.0, 5, 5, True),
    (route_links(TOPO, 0, 15), 1000.0, 0, 15, True),
    (route_links(TOPO, 3, 12), 256.0, 3, 12, True),
]


def record_script(st, legs=LEGS, flush_every=None):
    for i, leg in enumerate(legs):
        st.record(*leg)
        if flush_every and (i + 1) % flush_every == 0:
            st._flush()
    return st


def assert_equivalent(a: LinkStats, b: LinkStats):
    assert a.snapshot() == b.snapshot()
    np.testing.assert_array_equal(a.link_bytes, b.link_bytes)
    np.testing.assert_array_equal(a.link_msgs, b.link_msgs)
    np.testing.assert_array_equal(a.startups, b.startups)
    np.testing.assert_array_equal(a.receives, b.receives)
    assert a.hottest_links() == b.hottest_links()
    assert a.render_link_table() == b.render_link_table()


class TestSparseEqualsDense:
    def test_default_representation_tracks_node_count(self):
        assert LinkStats(TOPO).dense
        assert LinkStats(Hypercube(12)).dense  # 4096 == limit
        assert not LinkStats(Hypercube(13)).dense
        assert Hypercube(13).n_nodes > DENSE_NODE_LIMIT

    @pytest.mark.parametrize("flush_every", [None, 1, 2])
    def test_all_observables_identical(self, flush_every):
        dense = record_script(LinkStats(TOPO, dense=True), flush_every=flush_every)
        sparse = record_script(LinkStats(TOPO, dense=False), flush_every=flush_every)
        assert dense.dense and not sparse.dense
        assert_equivalent(dense, sparse)
        assert sparse.congestion_bytes == dense.congestion_bytes
        assert sparse.congestion_msgs == dense.congestion_msgs
        assert sparse.total_bytes == dense.total_bytes
        assert sparse.total_link_msgs == dense.total_link_msgs
        # Reading the aggregates must not have densified the instance.
        assert not sparse.dense

    def test_empty_sparse_observables(self):
        st = LinkStats(TOPO, dense=False)
        assert st.congestion_bytes == 0.0 and st.total_link_msgs == 0
        np.testing.assert_array_equal(st.link_bytes, np.zeros(TOPO.n_links))
        assert st.hottest_links() == []

    def test_densify_is_lossless_and_permanent(self):
        sparse = record_script(LinkStats(TOPO, dense=False))
        reference = record_script(LinkStats(TOPO, dense=True))
        sparse._densify()
        assert sparse.dense
        assert_equivalent(sparse, reference)
        sparse._densify()  # idempotent
        assert_equivalent(sparse, reference)

    def test_checkpoint_delta_in_sparse_mode(self):
        sparse = record_script(LinkStats(TOPO, dense=False))
        mark = sparse.checkpoint()
        extra = (route_links(TOPO, 7, 8), 512.0, 7, 8, True)
        sparse.record(*extra)
        just_extra = record_script(LinkStats(TOPO, dense=True), legs=[extra])
        delta = sparse.delta(mark)
        assert delta == just_extra.snapshot()


class TestMergeFrom:
    """Worker-shard folding: ``merge_from`` must equal recording every
    leg into one instance, whatever mix of representations the shards
    and the target use."""

    A = LEGS[:3]
    B = LEGS[3:]

    @pytest.mark.parametrize("target_dense", [True, False], ids=["into-dense", "into-sparse"])
    @pytest.mark.parametrize("shard_dense", [True, False], ids=["from-dense", "from-sparse"])
    def test_all_four_combinations(self, target_dense, shard_dense):
        target = record_script(LinkStats(TOPO, dense=target_dense), legs=self.A)
        shard = record_script(LinkStats(TOPO, dense=shard_dense), legs=self.B)
        target.merge_from(shard)
        reference = record_script(LinkStats(TOPO, dense=True))
        assert_equivalent(target, reference)

    def test_merge_into_fresh_target(self):
        target = LinkStats(TOPO, dense=False)
        target.merge_from(record_script(LinkStats(TOPO, dense=False)))
        assert_equivalent(target, record_script(LinkStats(TOPO, dense=True)))

    def test_mismatched_topologies_rejected(self):
        with pytest.raises(ValueError):
            LinkStats(TOPO).merge_from(LinkStats(Mesh2D(3, 3)))
