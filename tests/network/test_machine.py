"""Machine cost model tests."""

import pytest

from repro.network.machine import GCEL, ZERO_COST, MachineModel


class TestGCel:
    def test_paper_calibration(self):
        assert GCEL.link_bandwidth == 1.0e6  # ~1 Mbyte/s
        assert abs(GCEL.int_op_time - 1e-6 / 0.29) < 1e-12  # 0.29 adds/us
        assert GCEL.word_bytes == 4

    def test_link_processor_speed_ratio(self):
        """The paper derives a link/processor speed ratio of about 0.86
        from 1 MB/s links and 0.29 int-adds/us on 4-byte words."""
        words_per_sec_link = GCEL.link_bandwidth / GCEL.word_bytes
        adds_per_sec = 1.0 / GCEL.int_op_time
        assert abs(words_per_sec_link / adds_per_sec - 0.86) < 0.01

    def test_nic_overhead_grows_with_size(self):
        small = GCEL.nic_overhead(GCEL.ctrl_bytes)
        large = GCEL.nic_overhead(16 * 1024)
        assert large > 10 * small  # data startups "a lot larger" than control

    def test_transfer_time(self):
        assert GCEL.transfer_time(1_000_000) == pytest.approx(1.0)

    def test_compute_time(self):
        assert GCEL.compute_time(0.29e6) == pytest.approx(1.0)

    def test_data_bytes_adds_header(self):
        assert GCEL.data_bytes(100) == 100 + GCEL.header_bytes

    def test_with_override(self):
        m = GCEL.with_(link_bandwidth=2e6)
        assert m.link_bandwidth == 2e6
        assert m.int_op_time == GCEL.int_op_time
        assert GCEL.link_bandwidth == 1e6  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            GCEL.link_bandwidth = 5  # type: ignore[misc]


class TestZeroCost:
    def test_everything_free(self):
        assert ZERO_COST.nic_overhead(10_000) == 0
        assert ZERO_COST.transfer_time(10_000) == 0
        assert ZERO_COST.compute_time(1e9) == 0
        assert ZERO_COST.local_overhead == 0
