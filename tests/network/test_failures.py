"""Failure-model layer: spec parser fuzz, schedule determinism, and the
failure-aware route view.

Satellite coverage of the fault-injection subsystem:

* seeded fuzz of the spec grammar -- ``parse -> format -> parse``
  round-trips for every registered model over its whole parameter space;
* malformed specs raise clean ``ValueError``\\ s listing the valid
  alternatives (models and parameter names);
* schedule generation is a pure function of ``(spec, topology)``: same
  seed, identical schedule; schedules are time-sorted, non-negative,
  well-kinded, and churn always leaves a survivor;
* :class:`FailureView` route resolution: detours avoid the down set,
  unreachable pairs resolve to the empty route, the per-epoch cache is
  cleared in place.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.failures import (
    EVENT_KINDS,
    FAILURE_MODELS,
    FailureEvent,
    FailureModel,
    FailureSchedule,
    FailureView,
    build_schedule,
    failure_model_names,
    format_failure_spec,
    parse_failure_spec,
    register_failure_model,
)
from repro.network.topology import make_topology

finite = dict(allow_nan=False, allow_infinity=False, width=64)

#: Valid parameter draws per model, spanning each model's full domain.
PARAM_STRATEGIES = {
    "none": st.fixed_dictionaries({}),
    "linkflap": st.fixed_dictionaries({
        "rate": st.floats(min_value=0.0, max_value=1.0, **finite),
        "seed": st.integers(min_value=0, max_value=2**31),
        "horizon": st.floats(min_value=1e-6, max_value=1e3, **finite),
        "down": st.floats(min_value=0.0, max_value=10.0, **finite),
    }),
    "churn": st.fixed_dictionaries({
        "nodes": st.floats(min_value=0.0, max_value=1.0, **finite),
        "seed": st.integers(min_value=0, max_value=2**31),
        "horizon": st.floats(min_value=1e-6, max_value=1e3, **finite),
        "revive": st.floats(min_value=0.0, max_value=10.0, **finite),
    }),
    "linkdown": st.fixed_dictionaries({
        "link": st.integers(min_value=0, max_value=10**6),
        "at": st.floats(min_value=0.0, max_value=1e3, **finite),
        "up": st.floats(min_value=-10.0, max_value=1e3, **finite),
    }),
    "nodedown": st.fixed_dictionaries({
        "node": st.integers(min_value=0, max_value=10**6),
        "at": st.floats(min_value=0.0, max_value=1e3, **finite),
        "up": st.floats(min_value=-10.0, max_value=1e3, **finite),
    }),
}


class TestSpecRoundTrip:
    @pytest.mark.parametrize("name", sorted(PARAM_STRATEGIES))
    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_parse_format_parse_is_identity(self, name, data):
        params = data.draw(PARAM_STRATEGIES[name])
        model = FAILURE_MODELS[name]
        spec = format_failure_spec(model, params)
        model2, params2 = parse_failure_spec(spec)
        assert model2 is model
        assert params2 == {**model.defaults, **params}
        # Formatting the parsed result is a fixed point.
        assert format_failure_spec(model2, params2) == spec

    def test_format_accepts_model_name(self):
        assert format_failure_spec("churn", {"nodes": 0.1}) == (
            "churn:nodes=0.1:seed=0:horizon=0.01:revive=0.0"
        )

    def test_positional_token_equals_keyword(self):
        for spec_a, spec_b in [
            ("linkflap:0.25", "linkflap:rate=0.25"),
            ("churn:0.5:seed=3", "churn:nodes=0.5:seed=3"),
        ]:
            ma, pa = parse_failure_spec(spec_a)
            mb, pb = parse_failure_spec(spec_b)
            assert ma is mb and pa == pb

    def test_whitespace_tolerated(self):
        model, params = parse_failure_spec("  churn:nodes=0.1  ")
        assert model.name == "churn" and params["nodes"] == 0.1


class TestMalformedSpecs:
    """Every rejection is a clean ``ValueError`` whose message lists the
    valid alternatives -- no tracebacks from deep inside a builder."""

    @pytest.mark.parametrize("spec,fragment", [
        ("bogus", "unknown failure model 'bogus'"),
        ("bogus", "linkflap"),  # ... listing the registered models
        ("linkflap:rate=-1", "within [0.0, 1.0]"),
        ("linkflap:rate=2", "within [0.0, 1.0]"),
        ("churn:nodes=1.5", "within [0.0, 1.0]"),
        ("linkflap:wat=3", "has no parameter 'wat'"),
        ("linkflap:wat=3", "down, horizon, rate, seed"),  # ... and the valid keys
        ("churn:nodes=abc", "expects float"),
        ("linkflap:seed=x", "expects int"),
        ("linkdown:5", "takes no positional"),
        ("linkflap::rate=0.1", "empty segment"),
        ("churn:horizon=0", "horizon must be > 0"),
        ("churn:horizon=-3", "horizon must be > 0"),
        ("linkflap:down=-0.5", "down must be >= 0"),
        ("churn:revive=-1", "revive must be >= 0"),
        ("linkdown:link=-1", "link must be >= 0"),
        ("nodedown:node=-2", "node must be >= 0"),
        ("nodedown:at=-0.5", "at must be >= 0"),
    ])
    def test_rejection_names_the_problem(self, spec, fragment):
        with pytest.raises(ValueError) as exc:
            parse_failure_spec(spec)
        assert fragment in str(exc.value)

    @pytest.mark.parametrize("spec", ["", "   ", None, 42])
    def test_non_spec_rejected(self, spec):
        with pytest.raises(ValueError, match="non-empty string"):
            parse_failure_spec(spec)

    def test_out_of_range_targets_rejected_at_build(self):
        topo = make_topology("mesh", 4)
        with pytest.raises(ValueError, match="out of range"):
            build_schedule(f"linkdown:link={topo.n_links}", topo)
        with pytest.raises(ValueError, match="out of range"):
            build_schedule("nodedown:node=16", topo)

    @given(junk=st.text(min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_text_never_escapes_valueerror(self, junk):
        """Fuzz the whole grammar: anything malformed fails as a
        ``ValueError``; anything accepted must format back to a spec
        that parses to the same model."""
        try:
            model, params = parse_failure_spec(junk)
        except ValueError:
            return
        model2, params2 = parse_failure_spec(format_failure_spec(model, params))
        assert model2 is model and params2 == params


class TestScheduleDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**16),
           rate=st.floats(min_value=0.01, max_value=1.0, **finite))
    @settings(max_examples=40, deadline=None)
    def test_same_seed_identical_schedule(self, seed, rate):
        topo = make_topology("mesh", 4)
        spec = f"linkflap:rate={rate!r}:seed={seed}"
        assert build_schedule(spec, topo) == build_schedule(spec, topo)

    def test_different_seeds_differ(self):
        topo = make_topology("mesh", 4)
        a = build_schedule("linkflap:rate=0.2:seed=1", topo)
        b = build_schedule("linkflap:rate=0.2:seed=2", topo)
        assert a.events != b.events

    @given(seed=st.integers(min_value=0, max_value=2**16),
           frac=st.floats(min_value=0.0, max_value=1.0, **finite),
           revive=st.floats(min_value=0.0, max_value=2.0, **finite))
    @settings(max_examples=40, deadline=None)
    def test_churn_schedules_well_formed(self, seed, frac, revive):
        """Time-sorted, non-negative, well-kinded, valid targets -- and
        at no instant is every processor down."""
        topo = make_topology("mesh", 4)
        sched = build_schedule(
            f"churn:nodes={frac!r}:seed={seed}:revive={revive!r}", topo
        )
        times = [ev.time for ev in sched]
        assert times == sorted(times)
        down = set()
        for ev in sched:
            assert ev.kind in EVENT_KINDS
            assert ev.time >= 0.0
            assert 0 <= ev.target < topo.n_nodes
            if ev.kind == "node_down":
                down.add(ev.target)
            elif ev.kind == "node_up":
                down.discard(ev.target)
            assert len(down) < topo.n_nodes  # a survivor at every instant

    @given(seed=st.integers(min_value=0, max_value=2**16),
           rate=st.floats(min_value=0.0, max_value=1.0, **finite),
           down=st.floats(min_value=0.0, max_value=3.0, **finite))
    @settings(max_examples=40, deadline=None)
    def test_linkflap_schedules_well_formed(self, seed, rate, down):
        topo = make_topology("mesh", 4)
        sched = build_schedule(
            f"linkflap:rate={rate!r}:seed={seed}:down={down!r}", topo
        )
        assert [ev.time for ev in sched] == sorted(ev.time for ev in sched)
        for ev in sched:
            assert ev.kind in ("link_down", "link_up")
            assert 0 <= ev.target < topo.n_links
        downs = sum(1 for ev in sched if ev.kind == "link_down")
        ups = sum(1 for ev in sched if ev.kind == "link_up")
        if rate > 0.0:
            assert downs >= 1  # a positive rate rounds up to at least one link
        else:
            assert downs == 0  # rate=0 means no failures at all
        assert ups == (downs if down > 0.0 else 0)

    @pytest.mark.parametrize("empty", [None, "", "  ", "none"])
    def test_empty_specs_build_the_empty_schedule(self, empty):
        sched = build_schedule(empty, make_topology("mesh", 4))
        assert sched.is_empty and len(sched) == 0
        assert sched.spec == "none"

    def test_prebuilt_schedule_passes_through(self):
        topo = make_topology("mesh", 4)
        sched = build_schedule("nodedown:node=3:at=0.5", topo)
        assert build_schedule(sched, topo) is sched


class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert failure_model_names() == [
            "none", "linkflap", "churn", "linkdown", "nodedown"
        ]

    def test_reregistering_same_builder_is_idempotent(self):
        model = FAILURE_MODELS["churn"]
        assert register_failure_model(model) is model

    def test_reregistering_different_builder_rejected(self):
        clash = FailureModel(name="churn", description="imposter",
                             build=lambda topo, params: [])
        with pytest.raises(ValueError, match="already registered"):
            register_failure_model(clash)


def route_connects(topo, view, src, dst, route):
    """Walk ``route``'s links via their endpoints: src -> dst, every
    link usable."""
    _, ends = view._tables()
    at = src
    for link in route:
        u, v = ends[link]
        assert u == at, f"route breaks at link {link}: at {at}, link starts {u}"
        assert view.link_usable(link)
        at = v
    assert at == dst


class TestFailureView:
    def make(self, spec="none", side=4):
        topo = make_topology("mesh", side)
        return topo, FailureView(topo, build_schedule(spec, topo))

    def test_clean_lookup_is_the_pristine_route(self):
        topo, view = self.make()
        assert view.lookup(0, 5) == view._base.lookup(0, 5)
        assert view.routes_detoured == view.routes_lost == 0

    def test_detour_avoids_down_link_and_connects(self):
        topo, view = self.make()
        pristine = view._base.lookup(0, 15)
        view.apply(FailureEvent(0.0, "link_down", pristine[0]))
        route = view.lookup(0, 15)
        assert pristine[0] not in route
        route_connects(topo, view, 0, 15, route)
        assert view.routes_detoured == 1

    def test_down_node_loses_both_directions(self):
        topo, view = self.make()
        view.apply(FailureEvent(0.0, "node_down", 5))
        assert view.lookup(5, 9) == ()
        assert view.lookup(9, 5) == ()
        assert view.routes_lost == 2

    def test_transit_through_down_node_detours(self):
        """Pairs whose pristine route merely passes through the dead
        node detour around it."""
        topo, view = self.make()
        view.apply(FailureEvent(0.0, "node_down", 5))
        down_links = {l for l, u, v in topo.iter_links() if 5 in (u, v)}
        for src, dst in [(1, 9), (4, 6), (0, 10)]:
            route = view.lookup(src, dst)
            assert route, f"{src}->{dst} should remain reachable"
            assert not (set(route) & down_links)
            route_connects(topo, view, src, dst, route)

    def test_severed_node_is_unreachable_by_links_alone(self):
        """Downing every link incident to a node partitions it without
        marking the node itself down."""
        topo, view = self.make()
        t = 0.0
        for link, u, v in topo.iter_links():
            if 0 in (u, v):
                view.apply(FailureEvent(t, "link_down", link))
        lost_before = view.routes_lost
        assert view.lookup(0, 15) == ()
        assert view.lookup(15, 0) == ()
        assert view.routes_lost == lost_before + 2

    def test_apply_clears_the_cache_in_place(self):
        """The engines hold direct references to ``route_cache``; a new
        epoch must clear, never replace, the dict."""
        topo, view = self.make()
        cache = view.route_cache
        view.lookup(0, 5)
        assert cache  # populated
        view.apply(FailureEvent(0.0, "link_down", 0))
        assert view.route_cache is cache
        assert not cache

    def test_link_up_restores_the_pristine_route(self):
        topo, view = self.make()
        pristine = view.lookup(0, 15)
        view.apply(FailureEvent(0.0, "link_down", pristine[0]))
        view.apply(FailureEvent(0.001, "link_up", pristine[0]))
        assert view.lookup(0, 15) == pristine
        assert view.events_applied == 2

    def test_unknown_event_kind_rejected(self):
        _, view = self.make()
        with pytest.raises(ValueError, match="unknown failure event kind"):
            view.apply(FailureEvent(0.0, "meteor", 3))

    @given(seed=st.integers(min_value=0, max_value=2**12))
    @settings(max_examples=25, deadline=None)
    def test_all_routes_valid_under_random_churn(self, seed):
        """After applying a random churn + flap prefix, every pair's
        route either connects src to dst over usable links or is empty
        with an endpoint dead / partitioned."""
        topo = make_topology("mesh", 3)
        view = FailureView(topo, FailureSchedule("none", ()))
        for ev in build_schedule(f"churn:nodes=0.3:seed={seed}", topo):
            view.apply(ev)
        for ev in build_schedule(f"linkflap:rate=0.2:seed={seed}", topo):
            view.apply(ev)
        n = topo.n_nodes
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                route = view.lookup(src, dst)
                if route:
                    route_connects(topo, view, src, dst, route)
