"""Algebraic (closed-form) routing vs the cached route table.

Above ``DENSE_NODE_LIMIT`` the package routes with an
:class:`AlgebraicRouter` that recomputes every path on demand; below it
the dense :class:`RouteTable` memoizes.  These tests pin the two
representations bit-identical -- same directed link ids, same lengths --
across all three topology families, for random pairs, and across the
threshold crossover, so the representation switch can never change a
simulated result.
"""

import logging
import random

import pytest

from repro.network import routing
from repro.network.mesh import Mesh2D
from repro.network.routing import (
    DENSE_NODE_LIMIT,
    AlgebraicRouter,
    RouteTable,
    get_route_table,
)
from repro.network.topology import Hypercube
from repro.network.torus import Torus2D


def sample_pairs(topo, k=200, seed=7):
    """Random node pairs plus the corners and the self-pair."""
    rng = random.Random(seed)
    n = topo.n_nodes
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(k)]
    pairs += [(0, 0), (0, n - 1), (n - 1, 0), (n - 1, n - 1)]
    return pairs


# Sizes straddle DENSE_NODE_LIMIT=4096; rectangles and degenerate shapes
# exercise the coordinate arithmetic, not just the square cases.
SMALL = [Mesh2D(4, 5), Mesh2D(1, 9), Mesh2D(7, 3), Torus2D(4, 4), Torus2D(3, 7),
         Hypercube(1), Hypercube(4)]
LARGE = [Mesh2D(128, 64), Torus2D(64, 128), Hypercube(13)]  # 8192 nodes each


class TestAlgebraicEqualsTable:
    @pytest.mark.parametrize("topo", SMALL + LARGE, ids=lambda t: t.label)
    def test_routes_identical_to_table_and_compute(self, topo):
        alg = AlgebraicRouter(topo)
        table = RouteTable(topo, max_entries=1 << 16)
        for src, dst in sample_pairs(topo):
            route = alg.lookup(src, dst)
            assert route == table.lookup(src, dst) == topo.compute_route(src, dst)
            assert len(route) == topo.distance(src, dst)
            for link in route:
                assert 0 <= link < topo.n_links

    @pytest.mark.parametrize("topo", SMALL, ids=lambda t: t.label)
    def test_paths_connect_src_to_dst(self, topo):
        """Walking the algebraic route's link endpoints reaches dst."""
        alg = AlgebraicRouter(topo)
        for src, dst in sample_pairs(topo, k=50):
            cur = src
            for link in alg.lookup(src, dst):
                a, b = topo.link_endpoints(link)
                assert a == cur
                cur = b
            assert cur == dst

    def test_repeated_lookups_are_stable_and_store_nothing(self):
        topo = Torus2D(64, 128)
        alg = AlgebraicRouter(topo)
        first = alg.lookup(3, 7777)
        assert alg.lookup(3, 7777) == first
        assert alg.routes == {} and len(alg) == 0

    def test_key_parity_with_route_table(self):
        topo = Mesh2D(4, 4)
        assert AlgebraicRouter(topo).key(3, 9) == RouteTable(topo).key(3, 9)


class TestThresholdCrossover:
    """The representation switch at DENSE_NODE_LIMIT must be invisible:
    the sizes just below and just above the limit route the same way."""

    def test_selection_by_node_count(self):
        assert isinstance(get_route_table(Mesh2D(64, 64)), RouteTable)  # == limit
        assert isinstance(get_route_table(Mesh2D(128, 64)), AlgebraicRouter)
        assert isinstance(get_route_table(Hypercube(12)), RouteTable)
        assert isinstance(get_route_table(Hypercube(13)), AlgebraicRouter)

    def test_limit_is_the_shared_constant(self):
        assert Mesh2D(64, 64).n_nodes == DENSE_NODE_LIMIT

    @pytest.mark.parametrize("make", [
        pytest.param(lambda d: Hypercube(d), id="hypercube"),
    ])
    def test_same_pairs_route_consistently_across_the_crossover(self, make):
        """At 2^12 (cached) and 2^13 (algebraic) nodes, pairs that exist
        in both machines get routes that agree on the shared prefix of
        dimensions -- and within each machine cached == uncached ==
        algebraic."""
        below, above = make(12), make(13)
        assert below.n_nodes <= DENSE_NODE_LIMIT < above.n_nodes
        for topo in (below, above):
            router = get_route_table(topo)
            alg = AlgebraicRouter(topo)
            uncached = RouteTable(topo, max_entries=1)  # evicts constantly
            for src, dst in sample_pairs(topo, k=100, seed=13):
                expect = topo.compute_route(src, dst)
                assert router.lookup(src, dst) == expect
                assert alg.lookup(src, dst) == expect
                assert uncached.lookup(src, dst) == expect
        # Pairs within the smaller machine's id range use identical
        # e-cube link *structure* in both (lowest differing dim first).
        for src, dst in sample_pairs(below, k=50, seed=17):
            assert len(below.compute_route(src, dst)) == len(
                above.compute_route(src, dst)
            )


class TestBoundedTableWarning:
    def test_direct_construction_above_limit_warns_once(self, caplog, monkeypatch):
        monkeypatch.setattr(routing, "_warned_bounded", False)
        big = Mesh2D(128, 64)
        with caplog.at_level(logging.WARNING, logger="repro.network.routing"):
            table = RouteTable(big)
            RouteTable(big)  # second construction stays silent
        hits = [r for r in caplog.records if "FIFO-bounded" in r.getMessage()]
        assert len(hits) == 1
        assert "AlgebraicRouter" in hits[0].getMessage()
        # The legacy mode still bounds itself (it must not OOM)...
        assert table.max_entries == routing._BOUNDED_ENTRIES
        # ...but the package-level entry point avoids it entirely.
        assert isinstance(get_route_table(big), AlgebraicRouter)

    def test_explicit_bound_never_warns(self, caplog, monkeypatch):
        monkeypatch.setattr(routing, "_warned_bounded", False)
        with caplog.at_level(logging.WARNING, logger="repro.network.routing"):
            RouteTable(Mesh2D(128, 64), max_entries=64)
        assert not [r for r in caplog.records if "FIFO-bounded" in r.getMessage()]
