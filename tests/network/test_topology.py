"""Topology abstraction tests: torus, hypercube, and the routing
invariants every topology shares."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.mesh import Mesh2D
from repro.network.routing import path_length, route_links, route_nodes
from repro.network.topology import Hypercube, make_topology
from repro.network.torus import Torus2D

# ---------------------------------------------------------------- strategies
meshes = st.builds(
    Mesh2D, st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8)
)
tori = st.builds(
    Torus2D, st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=8)
)
hypercubes = st.builds(Hypercube, st.integers(min_value=1, max_value=6))
topologies = st.one_of(meshes, tori, hypercubes)


@st.composite
def topology_and_pair(draw, topos=topologies):
    t = draw(topos)
    src = draw(st.integers(min_value=0, max_value=t.n_nodes - 1))
    dst = draw(st.integers(min_value=0, max_value=t.n_nodes - 1))
    return t, src, dst


# ------------------------------------------------------- structural: torus
class TestTorusStructure:
    def test_link_count(self):
        t = Torus2D(3, 4)
        assert t.n_links == Mesh2D(3, 4).n_links + 2 * 3 + 2 * 4
        assert t.num_links == t.n_links

    def test_mesh_link_ids_are_preserved(self):
        """Interior links keep the mesh's ids, so mesh tooling transfers."""
        m, t = Mesh2D(4, 5), Torus2D(4, 5)
        for link in range(m.n_links):
            assert t.link_endpoints(link) == m.link_endpoints(link)

    def test_wrap_endpoints(self):
        t = Torus2D(3, 4)
        assert t.link_endpoints(t.h_wrap(1, True)) == (t.node(1, 3), t.node(1, 0))
        assert t.link_endpoints(t.h_wrap(1, False)) == (t.node(1, 0), t.node(1, 3))
        assert t.link_endpoints(t.v_wrap(2, True)) == (t.node(2, 2), t.node(0, 2))
        assert t.link_endpoints(t.v_wrap(2, False)) == (t.node(0, 2), t.node(2, 2))

    def test_every_link_id_roundtrips(self):
        t = Torus2D(3, 3)
        seen = set()
        for link, src, dst in t.iter_links():
            assert dst in t.neighbors(src)
            seen.add(link)
        assert seen == set(range(t.n_links))

    def test_degenerate_sides_rejected(self):
        with pytest.raises(ValueError):
            Torus2D(1, 4)

    def test_distance_wraps(self):
        t = Torus2D(4, 6)
        assert t.distance(t.node(0, 0), t.node(0, 5)) == 1
        assert t.distance(t.node(0, 0), t.node(3, 0)) == 1
        assert t.distance(t.node(0, 0), t.node(2, 3)) == 5
        assert t.diameter == 5

    def test_label_and_kind(self):
        t = Torus2D(4, 4)
        assert t.kind == "torus" and t.label == "torus-4x4"
        # The mesh keeps its historic label (byte-identical tables).
        assert Mesh2D(4, 4).label == "4x4" and Mesh2D(4, 4).kind == "mesh"


# --------------------------------------------------- structural: hypercube
class TestHypercubeStructure:
    def test_counts(self):
        h = Hypercube(3)
        assert h.n_nodes == 8
        assert h.n_links == 24
        assert h.diameter == 3
        assert h.bisection_links == 8

    def test_neighbors_differ_in_one_bit(self):
        h = Hypercube(4)
        for n in h.nodes():
            for nb in h.neighbors(n):
                assert bin(n ^ nb).count("1") == 1

    def test_ecube_route_fixes_low_dimensions_first(self):
        h = Hypercube(3)
        nodes = route_nodes(h, 0b000, 0b110)
        assert nodes == [0b000, 0b010, 0b110]

    def test_every_link_id_roundtrips(self):
        h = Hypercube(3)
        seen = set()
        for link, src, dst in h.iter_links():
            assert dst in h.neighbors(src)
            seen.add(link)
        assert seen == set(range(h.n_links))

    def test_grid_view_is_the_id_column(self):
        h = Hypercube(3)
        assert (h.rows, h.cols) == (8, 1)
        assert h.node(5, 0) == 5 and h.coord(5) == (5, 0)
        assert h.submesh_nodes(2, 0, 4, 1) == [2, 3, 4, 5]
        with pytest.raises(ValueError):
            h.node(0, 1)

    def test_make_topology_matched_node_counts(self):
        assert make_topology("mesh", 16) == Mesh2D(16, 16)
        assert make_topology("torus", 16) == Torus2D(16, 16)
        assert make_topology("hypercube", 16) == Hypercube(8)
        with pytest.raises(ValueError):
            make_topology("hypercube", 6)  # 36 nodes: not a power of two
        with pytest.raises(ValueError):
            make_topology("ring", 4)


# ----------------------------------------------- shared routing invariants
class TestRoutingInvariants:
    """The invariants every topology's deterministic routing must satisfy
    (the simulator and the congestion accounting rely on all three)."""

    @given(topology_and_pair())
    def test_route_length_equals_distance(self, tp):
        t, src, dst = tp
        assert len(route_links(t, src, dst)) == t.distance(src, dst) == path_length(t, src, dst)

    @given(topology_and_pair())
    def test_route_links_within_bounds_and_connected(self, tp):
        t, src, dst = tp
        links = route_links(t, src, dst)
        assert all(0 <= link < t.n_links for link in links)
        cur = src
        for link in links:
            a, b = t.link_endpoints(link)
            assert a == cur
            cur = b
        assert cur == dst

    @given(topology_and_pair())
    def test_route_is_deterministic(self, tp):
        t, src, dst = tp
        assert route_links(t, src, dst) == t.compute_route(src, dst)

    @given(topology_and_pair(tori))
    def test_torus_route_never_longer_than_mesh_route(self, tp):
        """Wraparound may only help: for the same endpoint pair the torus
        route is never longer than the mesh route."""
        t, src, dst = tp
        m = Mesh2D(t.rows, t.cols)
        assert len(route_links(t, src, dst)) <= len(route_links(m, src, dst))

    @given(topology_and_pair(tori))
    def test_wrap_free_torus_routes_match_mesh(self, tp):
        """When no wrap direction is strictly shorter, the torus picks the
        mesh's dimension-order path link for link."""
        t, src, dst = tp
        m = Mesh2D(t.rows, t.cols)
        (r1, c1), (r2, c2) = m.coord(src), m.coord(dst)
        dr, dc = abs(r1 - r2), abs(c1 - c2)
        if 2 * dc < t.cols and 2 * dr < t.rows:  # direct way strictly shorter
            assert route_links(t, src, dst) == route_links(m, src, dst)


class TestMakeTopologyNodes:
    """Node-count-based construction behind the xscale sweep."""

    def test_square_power_of_two(self):
        from repro.network.topology import make_topology_nodes

        topo = make_topology_nodes("mesh", 1024)
        assert (topo.rows, topo.cols) == (32, 32)
        assert topo.n_nodes == 1024

    def test_odd_power_becomes_2to1_rectangle(self):
        from repro.network.topology import make_topology_nodes

        topo = make_topology_nodes("torus", 2048)
        assert (topo.rows, topo.cols) == (32, 64)
        assert topo.kind == "torus"

    def test_hypercube_dimension(self):
        from repro.network.topology import make_topology_nodes

        topo = make_topology_nodes("hypercube", 4096)
        assert topo.dim == 12
        assert topo.n_nodes == 4096

    def test_every_kind_at_every_xscale_count(self):
        from repro.network.topology import TOPOLOGY_KINDS, make_topology_nodes

        for kind in TOPOLOGY_KINDS:
            for nodes in (1024, 2048, 4096):
                assert make_topology_nodes(kind, nodes).n_nodes == nodes

    def test_non_power_of_two_rejected(self):
        import pytest

        from repro.network.topology import make_topology_nodes

        with pytest.raises(ValueError, match="power of two"):
            make_topology_nodes("mesh", 1000)
        with pytest.raises(ValueError, match="power of two"):
            make_topology_nodes("mesh", 0)

    def test_unknown_kind_rejected(self):
        import pytest

        from repro.network.topology import make_topology_nodes

        with pytest.raises(ValueError, match="unknown topology"):
            make_topology_nodes("ring", 1024)
