"""Dimension-order routing and route-table tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.mesh import Mesh2D
from repro.network.routing import (
    RouteTable,
    get_route_table,
    path_length,
    route_links,
    route_nodes,
)
from repro.network.topology import Hypercube
from repro.network.torus import Torus2D

small_mesh = st.builds(
    Mesh2D, st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8)
)


@st.composite
def mesh_and_pair(draw):
    m = draw(small_mesh)
    src = draw(st.integers(min_value=0, max_value=m.n_nodes - 1))
    dst = draw(st.integers(min_value=0, max_value=m.n_nodes - 1))
    return m, src, dst


class TestRoutes:
    def test_self_route_empty(self):
        m = Mesh2D(3, 3)
        assert route_links(m, 4, 4) == ()
        assert route_nodes(m, 4, 4) == [4]

    @given(mesh_and_pair())
    def test_path_is_connected_and_shortest(self, mp):
        m, src, dst = mp
        nodes = route_nodes(m, src, dst)
        assert nodes[0] == src and nodes[-1] == dst
        for a, b in zip(nodes, nodes[1:]):
            assert m.manhattan(a, b) == 1
        assert len(nodes) - 1 == m.manhattan(src, dst) == path_length(m, src, dst)

    @given(mesh_and_pair())
    def test_x_first_order(self, mp):
        """The path exhausts column movement before any row movement."""
        m, src, dst = mp
        nodes = route_nodes(m, src, dst)
        switched = False
        for a, b in zip(nodes, nodes[1:]):
            ra, ca = m.coord(a)
            rb, cb = m.coord(b)
            if ra != rb:  # vertical move
                switched = True
            else:  # horizontal move
                assert not switched, "horizontal move after vertical move"

    @given(mesh_and_pair())
    def test_links_valid(self, mp):
        m, src, dst = mp
        for link in route_links(m, src, dst):
            assert 0 <= link < m.n_links

    def test_known_route(self):
        m = Mesh2D(3, 3)
        # (0,0) -> (2,2): east, east, south, south
        nodes = route_nodes(m, m.node(0, 0), m.node(2, 2))
        assert nodes == [0, 1, 2, 5, 8]

    def test_route_west_then_north(self):
        m = Mesh2D(3, 3)
        nodes = route_nodes(m, m.node(2, 2), m.node(0, 0))
        assert nodes == [8, 7, 6, 3, 0]

    def test_caching_returns_same_tuple(self):
        m = Mesh2D(4, 4)
        a = route_links(m, 0, 15)
        b = route_links(m, 0, 15)
        assert a is b  # route-table identity

    @given(mesh_and_pair())
    def test_opposite_routes_use_disjoint_links(self, mp):
        """x-first routing in opposite directions uses opposite link
        directions, never the same directed link."""
        m, src, dst = mp
        fwd = set(route_links(m, src, dst))
        rev = set(route_links(m, dst, src))
        assert not (fwd & rev)


TOPOLOGIES = [Mesh2D(4, 5), Torus2D(4, 4), Hypercube(4)]


class TestRouteTable:
    """The per-topology route cache must be a transparent memo of
    ``compute_route`` -- for every topology family, under eviction, and
    without cross-topology leakage."""

    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.label)
    def test_cached_matches_uncached_for_all_pairs(self, topo):
        table = RouteTable(topo)
        for src in topo.nodes():
            for dst in topo.nodes():
                assert table.lookup(src, dst) == topo.compute_route(src, dst)
        # Second pass: every answer now comes from the cache.
        assert len(table) == topo.n_nodes**2
        for src in topo.nodes():
            for dst in topo.nodes():
                assert table.lookup(src, dst) == topo.compute_route(src, dst)

    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.label)
    def test_eviction_preserves_correctness(self, topo):
        """A tiny table constantly evicts; answers must never change."""
        table = RouteTable(topo, max_entries=4)
        for _ in range(2):  # revisit evicted pairs
            for src in topo.nodes():
                for dst in topo.nodes():
                    assert table.lookup(src, dst) == topo.compute_route(src, dst)
                    assert len(table) <= 4

    def test_eviction_is_fifo_and_bounded(self):
        m = Mesh2D(3, 3)
        table = RouteTable(m, max_entries=2)
        table.lookup(0, 1)
        table.lookup(0, 2)
        assert len(table) == 2
        table.lookup(0, 3)  # evicts the oldest (0 -> 1)
        assert len(table) == 2
        assert table.key(0, 1) not in table.routes
        assert table.key(0, 3) in table.routes

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            RouteTable(Mesh2D(2, 2), max_entries=0)

    def test_cross_topology_isolation(self):
        """A torus and the equal-sided mesh must not share a table: their
        routes differ (wrap links) even though their grids look alike."""
        mesh = Mesh2D(4, 4)
        torus = Torus2D(4, 4)
        tm = get_route_table(mesh)
        tt = get_route_table(torus)
        assert tm is not tt
        # (0,0) -> (0,3): three mesh hops, one torus wrap hop.
        assert len(route_links(mesh, 0, 3)) == 3
        assert len(route_links(torus, 0, 3)) == 1
        # The lookups above must not have polluted each other.
        assert tm.lookup(0, 3) == mesh.compute_route(0, 3)
        assert tt.lookup(0, 3) == torus.compute_route(0, 3)

    def test_equal_topologies_share_one_table(self):
        assert get_route_table(Mesh2D(4, 4)) is get_route_table(Mesh2D(4, 4))

    def test_simulator_uses_the_shared_table(self):
        from repro.network.machine import GCEL
        from repro.sim.engine import Simulator

        m = Mesh2D(3, 3)
        s = Simulator(m, GCEL)
        s.send_leg(0, 8, 100, ready=0.0, is_data=True)
        assert get_route_table(m).key(0, 8) in get_route_table(m).routes
