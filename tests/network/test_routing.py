"""Dimension-order routing tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.mesh import Mesh2D
from repro.network.routing import path_length, route_links, route_nodes

small_mesh = st.builds(
    Mesh2D, st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8)
)


@st.composite
def mesh_and_pair(draw):
    m = draw(small_mesh)
    src = draw(st.integers(min_value=0, max_value=m.n_nodes - 1))
    dst = draw(st.integers(min_value=0, max_value=m.n_nodes - 1))
    return m, src, dst


class TestRoutes:
    def test_self_route_empty(self):
        m = Mesh2D(3, 3)
        assert route_links(m, 4, 4) == ()
        assert route_nodes(m, 4, 4) == [4]

    @given(mesh_and_pair())
    def test_path_is_connected_and_shortest(self, mp):
        m, src, dst = mp
        nodes = route_nodes(m, src, dst)
        assert nodes[0] == src and nodes[-1] == dst
        for a, b in zip(nodes, nodes[1:]):
            assert m.manhattan(a, b) == 1
        assert len(nodes) - 1 == m.manhattan(src, dst) == path_length(m, src, dst)

    @given(mesh_and_pair())
    def test_x_first_order(self, mp):
        """The path exhausts column movement before any row movement."""
        m, src, dst = mp
        nodes = route_nodes(m, src, dst)
        switched = False
        for a, b in zip(nodes, nodes[1:]):
            ra, ca = m.coord(a)
            rb, cb = m.coord(b)
            if ra != rb:  # vertical move
                switched = True
            else:  # horizontal move
                assert not switched, "horizontal move after vertical move"

    @given(mesh_and_pair())
    def test_links_valid(self, mp):
        m, src, dst = mp
        for link in route_links(m, src, dst):
            assert 0 <= link < m.n_links

    def test_known_route(self):
        m = Mesh2D(3, 3)
        # (0,0) -> (2,2): east, east, south, south
        nodes = route_nodes(m, m.node(0, 0), m.node(2, 2))
        assert nodes == [0, 1, 2, 5, 8]

    def test_route_west_then_north(self):
        m = Mesh2D(3, 3)
        nodes = route_nodes(m, m.node(2, 2), m.node(0, 0))
        assert nodes == [8, 7, 6, 3, 0]

    def test_caching_returns_same_tuple(self):
        m = Mesh2D(4, 4)
        a = route_links(m, 0, 15)
        b = route_links(m, 0, 15)
        assert a is b  # lru_cache identity

    @given(mesh_and_pair())
    def test_opposite_routes_use_disjoint_links(self, mp):
        """x-first routing in opposite directions uses opposite link
        directions, never the same directed link."""
        m, src, dst = mp
        fwd = set(route_links(m, src, dst))
        rev = set(route_links(m, dst, src))
        assert not (fwd & rev)
