"""Unit and property tests for the mesh topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.mesh import Mesh2D

meshes = st.builds(
    Mesh2D, st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=12)
)


class TestBasics:
    def test_n_nodes(self):
        assert Mesh2D(4, 3).n_nodes == 12

    def test_invalid_sides(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 4)
        with pytest.raises(ValueError):
            Mesh2D(4, -1)

    def test_single_node_mesh(self):
        m = Mesh2D(1, 1)
        assert m.n_nodes == 1
        assert m.n_links == 0
        assert m.coord(0) == (0, 0)

    def test_row_major_numbering(self):
        m = Mesh2D(3, 4)
        assert m.node(0, 0) == 0
        assert m.node(0, 3) == 3
        assert m.node(1, 0) == 4
        assert m.node(2, 3) == 11

    def test_node_bounds_checked(self):
        m = Mesh2D(3, 3)
        with pytest.raises(ValueError):
            m.node(3, 0)
        with pytest.raises(ValueError):
            m.node(0, -1)
        with pytest.raises(ValueError):
            m.coord(9)

    def test_manhattan(self):
        m = Mesh2D(4, 4)
        assert m.manhattan(m.node(0, 0), m.node(3, 3)) == 6
        assert m.manhattan(5, 5) == 0

    def test_link_count(self):
        m = Mesh2D(4, 3)
        # 4 rows x 2 horizontal wires + 3 rows x 3 vertical wires, both dirs.
        assert m.n_links == 2 * (4 * 2 + 3 * 3)

    def test_line_mesh_links(self):
        m = Mesh2D(1, 5)
        assert m.n_links == 2 * 4
        m = Mesh2D(5, 1)
        assert m.n_links == 2 * 4


class TestLinkIds:
    @given(meshes)
    def test_link_endpoints_bijection(self, m: Mesh2D):
        seen = set()
        for link, src, dst in m.iter_links():
            assert (src, dst) not in seen
            seen.add((src, dst))
            assert m.manhattan(src, dst) == 1
        assert len(seen) == m.n_links

    @given(meshes)
    def test_every_neighbour_pair_has_link(self, m: Mesh2D):
        pairs = {(s, d) for _, s, d in m.iter_links()}
        for node in m.nodes():
            r, c = m.coord(node)
            for rr, cc in ((r + 1, c), (r - 1, c), (r, c + 1), (r, c - 1)):
                if 0 <= rr < m.rows and 0 <= cc < m.cols:
                    assert (node, m.node(rr, cc)) in pairs

    def test_h_link_directions(self):
        m = Mesh2D(2, 3)
        east = m.h_link(0, 0, eastbound=True)
        west = m.h_link(0, 0, eastbound=False)
        assert m.link_endpoints(east) == (m.node(0, 0), m.node(0, 1))
        assert m.link_endpoints(west) == (m.node(0, 1), m.node(0, 0))

    def test_v_link_directions(self):
        m = Mesh2D(3, 2)
        south = m.v_link(1, 1, southbound=True)
        north = m.v_link(1, 1, southbound=False)
        assert m.link_endpoints(south) == (m.node(1, 1), m.node(2, 1))
        assert m.link_endpoints(north) == (m.node(2, 1), m.node(1, 1))

    def test_link_bounds_checked(self):
        m = Mesh2D(2, 2)
        with pytest.raises(ValueError):
            m.h_link(0, 1, True)  # no wire to the right of the last column
        with pytest.raises(ValueError):
            m.v_link(1, 0, True)
        with pytest.raises(ValueError):
            m.link_endpoints(m.n_links)

    @given(meshes)
    def test_coord_node_roundtrip(self, m: Mesh2D):
        for node in m.nodes():
            r, c = m.coord(node)
            assert m.node(r, c) == node


class TestSubmesh:
    def test_submesh_nodes(self):
        m = Mesh2D(4, 4)
        nodes = m.submesh_nodes(1, 1, 2, 2)
        assert nodes == [m.node(1, 1), m.node(1, 2), m.node(2, 1), m.node(2, 2)]

    def test_submesh_full(self):
        m = Mesh2D(3, 2)
        assert m.submesh_nodes(0, 0, 3, 2) == list(m.nodes())

    def test_submesh_bounds(self):
        m = Mesh2D(3, 3)
        with pytest.raises(ValueError):
            m.submesh_nodes(2, 2, 2, 2)
        with pytest.raises(ValueError):
            m.submesh_nodes(0, 0, 0, 1)
