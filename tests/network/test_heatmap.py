"""Link heatmap / link table rendering tests."""

from repro.network.mesh import Mesh2D
from repro.network.routing import route_links
from repro.network.stats import LinkStats
from repro.network.topology import Hypercube
from repro.network.torus import Torus2D


def test_idle_mesh_renders_dots():
    s = LinkStats(Mesh2D(2, 2))
    out = s.render_heatmap()
    assert out.count("+") == 4
    assert ".." in out


def test_hot_wire_shows_100():
    m = Mesh2D(2, 2)
    s = LinkStats(m)
    s.record(route_links(m, 0, 1), 1000, 0, 1, True)
    out = s.render_heatmap()
    assert "100" in out


def test_relative_scaling():
    m = Mesh2D(1, 3)
    s = LinkStats(m)
    s.record(route_links(m, 0, 1), 1000, 0, 1, True)
    s.record(route_links(m, 1, 2), 500, 1, 2, True)
    out = s.render_heatmap()
    assert "100" in out and "50" in out


def test_rows_and_columns_render():
    m = Mesh2D(3, 4)
    s = LinkStats(m)
    out = s.render_heatmap()
    # 3 node rows + 2 vertical rows.
    assert len(out.splitlines()) == 5
    assert out.splitlines()[0].count("+") == 4


def test_torus_heatmap_appends_wrap_section():
    t = Torus2D(3, 3)
    s = LinkStats(t)
    # Load one wrap wire only: route (0,2) -> (0,0) goes east over the wrap.
    s.record(route_links(t, t.node(0, 2), t.node(0, 0)), 800, 2, 0, True)
    out = s.render_heatmap()
    assert "wrap wires" in out
    rows_line = next(line for line in out.splitlines() if line.startswith("rows:"))
    assert "100" in rows_line  # the loaded wrap wire is the peak
    # The grid section stays idle (no interior link was crossed).
    assert "100" not in out.split("wrap wires")[0]


def test_torus_render_dispatches_to_heatmap():
    t = Torus2D(2, 2)
    s = LinkStats(t)
    assert s.render() == s.render_heatmap()


def test_hypercube_render_is_a_link_table():
    h = Hypercube(3)
    s = LinkStats(h)
    # One e-cube route 0 -> 0b011 crosses dims 0 and 1 exactly once each.
    s.record(route_links(h, 0, 0b011), 500, 0, 3, True)
    out = s.render()
    assert "per-dimension directed-link load:" in out
    dim_section = out.split("hottest")[0].splitlines()
    table = {line.split()[0]: line.split() for line in dim_section if line[:1].isdigit()}
    assert table["0"][1] == "500" and table["1"][1] == "500" and table["2"][1] == "0"
    assert "hottest" in out
