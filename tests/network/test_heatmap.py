"""Link heatmap rendering tests."""

from repro.network.mesh import Mesh2D
from repro.network.routing import route_links
from repro.network.stats import LinkStats


def test_idle_mesh_renders_dots():
    s = LinkStats(Mesh2D(2, 2))
    out = s.render_heatmap()
    assert out.count("+") == 4
    assert ".." in out


def test_hot_wire_shows_100():
    m = Mesh2D(2, 2)
    s = LinkStats(m)
    s.record(route_links(m, 0, 1), 1000, 0, 1, True)
    out = s.render_heatmap()
    assert "100" in out


def test_relative_scaling():
    m = Mesh2D(1, 3)
    s = LinkStats(m)
    s.record(route_links(m, 0, 1), 1000, 0, 1, True)
    s.record(route_links(m, 1, 2), 500, 1, 2, True)
    out = s.render_heatmap()
    assert "100" in out and "50" in out


def test_rows_and_columns_render():
    m = Mesh2D(3, 4)
    s = LinkStats(m)
    out = s.render_heatmap()
    # 3 node rows + 2 vertical rows.
    assert len(out.splitlines()) == 5
    assert out.splitlines()[0].count("+") == 4
