"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import GCEL, ZERO_COST, Mesh2D, get_strategy
from repro.runtime.launcher import Runtime

#: All strategy variants evaluated in the paper.
ALL_STRATEGIES = ["2-ary", "4-ary", "16-ary", "2-4-ary", "4-8-ary", "4-16-ary", "fixed-home"]

#: Access-tree variants only.
TREE_STRATEGIES = ["2-ary", "4-ary", "16-ary", "2-4-ary", "4-8-ary", "4-16-ary"]


@pytest.fixture
def mesh4x4() -> Mesh2D:
    return Mesh2D(4, 4)


@pytest.fixture
def mesh4x3() -> Mesh2D:
    return Mesh2D(4, 3)


@pytest.fixture
def mesh8x8() -> Mesh2D:
    return Mesh2D(8, 8)


def run_program(mesh, strategy_name, program, machine=ZERO_COST, seed=0, **kw):
    """Build runtime + strategy, run ``program``, return (result, runtime)."""
    strategy = get_strategy(strategy_name, mesh, seed=seed)
    rt = Runtime(mesh, strategy, machine, seed=seed, **kw)
    result = rt.run(program)
    return result, rt
