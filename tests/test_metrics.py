"""The schema-v7 metric suite (repro.metrics).

Pins the MetricsBundle contract (one hit-rate convention, row emission
through ``to_row``/``carry_row``, no ad-hoc dict merges left), the
storage-cost invariants, and the pure-vs-C agreement of the latency
percentiles.
"""

from array import array

import pytest

from repro.analysis import experiments
from repro.metrics import LATENCY_QUANTILES, MetricsBundle, latency_percentiles
from repro.network.topology import make_topology
from repro.sim.engine import Simulator
from repro.workloads import get_workload


class TestMetricsBundle:
    def test_zero_traffic_rates_are_zero(self):
        """The one zero-request convention: no requests -> rate 0.0 (not
        NaN, not an exception).  Both the batch emitter and ServeReport
        go through this property."""
        bundle = MetricsBundle()
        assert bundle.requests == 0
        assert bundle.hit_rate == 0.0
        assert bundle.effective_network_usage == 0.0

    def test_hit_rate(self):
        assert MetricsBundle(hits=3, misses=1).hit_rate == 0.75
        assert MetricsBundle(hits=0, misses=4).hit_rate == 0.0

    def test_effective_network_usage_is_bytes_per_access(self):
        bundle = MetricsBundle(hits=2, misses=2, total_bytes=1024.0)
        assert bundle.effective_network_usage == 256.0

    def test_from_run_computes_percentiles(self):
        bundle = MetricsBundle.from_run(
            hits=1, misses=9, evictions=0, total_bytes=10.0,
            latencies=[float(i) for i in range(1, 101)], storage_cost=5.0,
        )
        assert bundle.latency_p50 == pytest.approx(50.5)
        assert bundle.latency_p50 <= bundle.latency_p95 <= bundle.latency_p99
        assert bundle.storage_cost == 5.0

    def test_to_row_emits_exactly_the_row_keys(self):
        row = MetricsBundle(hits=1, misses=1).to_row()
        assert tuple(row) == MetricsBundle.ROW_KEYS
        assert row["hit_rate"] == 0.5

    def test_carry_row_projects_the_row_keys(self):
        src = dict(MetricsBundle(hits=2, misses=0).to_row(), extra="x", time=1.0)
        carried = MetricsBundle.carry_row(src)
        assert tuple(carried) == MetricsBundle.ROW_KEYS
        assert "extra" not in carried and "time" not in carried


class TestLatencyPercentiles:
    def test_empty_is_all_zero(self):
        assert latency_percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert latency_percentiles(array("d")) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_array_and_list_agree(self):
        vals = [0.5, 0.1, 0.9, 0.2, 0.7]
        assert latency_percentiles(vals) == latency_percentiles(array("d", vals))

    def test_quantile_levels(self):
        assert LATENCY_QUANTILES == (0.5, 0.95, 0.99)


class TestNoAdHocMerges:
    """Schema v7 removed the duplicated metric merges: the helpers that
    used to compute hit_rate independently (with a different
    zero-request convention) must stay gone."""

    def test_old_merge_helpers_absent(self):
        assert not hasattr(experiments, "_cache_fields")
        assert not hasattr(experiments, "_carried_cache_fields")

    def test_run_result_hit_ratio_delegates_to_bundle(self):
        from repro.network.stats import StatsSnapshot
        from repro.runtime.results import RunResult

        res = RunResult(strategy="s", mesh="m", time=0.0, end_time=0.0,
                        stats=StatsSnapshot(*([0] * 9)))
        assert res.hit_ratio == 0.0  # zero traffic, bundle convention
        assert res.metrics.hit_rate == 0.0


def _zipf_result(topology, strategy):
    wl = get_workload("zipf")
    return wl.run(
        make_topology(topology, 4), strategy, seed=3,
        params={"n_vars": 32, "ops": 40, "alpha": 1.0, "read_frac": 0.85},
    )


class TestStorageCost:
    PROPERTY_CASES = [
        ("mesh", "fixed-home"), ("mesh", "4-ary"), ("mesh", "dynrep"),
        ("mesh", "adaptive"), ("hypercube", "2-4-ary"), ("torus", "fixed-home"),
    ]

    @pytest.mark.parametrize("topology,strategy", PROPERTY_CASES)
    def test_storage_cost_non_negative(self, topology, strategy):
        res = _zipf_result(topology, strategy)
        assert res.storage_cost >= 0.0

    @pytest.mark.parametrize("strategy", ["migratory", "handopt"])
    def test_single_copy_strategies_cost_zero(self, strategy):
        """Storage cost integrates EXCESS copies (beyond one
        authoritative copy per variable): schemes that never replicate
        cost exactly zero."""
        if strategy == "handopt":
            res = get_workload("matmul").run(
                make_topology("mesh", 4), strategy, params={"block_entries": 64})
        else:
            res = _zipf_result("mesh", strategy)
        assert res.storage_cost == 0.0

    def test_replication_costs_more_than_thresholding(self):
        eager = _zipf_result("mesh", "fixed-home")
        lazy = _zipf_result("mesh", "dynrep:threshold=4")
        assert eager.storage_cost > lazy.storage_cost > 0.0


class TestPureVsCDifferential:
    """Both engines must report byte-identical latency percentiles and
    storage cost: miss latencies close at the flow's exact completion
    time in either engine."""

    STRATEGIES = ("adaptive", "dynrep:threshold=2", "4-ary")
    TOPOLOGIES = ("mesh", "hypercube")

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_latency_percentiles_engine_identical(self, topology, strategy,
                                                  monkeypatch):
        from repro.sim import _ckern

        if _ckern.load_kernel() is None:
            pytest.skip("C kernel unavailable; only the pure engine runs here")
        kernel = _zipf_result(topology, strategy).as_dict()
        monkeypatch.setattr(Simulator, "force_pure", True)
        pure = _zipf_result(topology, strategy).as_dict()
        for key in ("latency_p50", "latency_p95", "latency_p99",
                    "storage_cost", "effective_network_usage"):
            assert kernel[key] == pure[key], key  # exact float equality
        kernel.pop("phases"), pure.pop("phases")
        assert kernel == pure
